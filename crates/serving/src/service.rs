//! The multi-tenant serving front-end over one pool: quota-bracketed
//! allocation, admission control, tenant-aware OOM rescue, and the step
//! cadence driving queue retries and defragmentation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Weak};

use parking_lot::Mutex;

use gmlake_alloc_api::{AllocError, AllocRequest, Allocation, AllocationId, StreamId};
use gmlake_runtime::{PoolHandle, RescueHook};
use gmlake_telemetry::EventKind;

use crate::admission::{
    AdmissionController, AdmissionPolicy, AdmissionStats, AdmissionVerdict, QueuedArrival,
};
use crate::defrag::{DefragConfig, DefragManager, DefragManagerStats};
use crate::tenant::{ChargeError, TenantId, TenantRegistry, TenantUsage};

/// Sentinel tenant id in [`EventKind::TenantAdmission`] records for
/// verdicts that never produced a tenant (rejected, queued, timed out).
const NO_TENANT: u64 = u64::MAX;

/// Configuration of a [`ServingService`].
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Physical capacity of the device the pool serves, in bytes (the
    /// pool API does not expose it, so the owner states it here).
    pub capacity_bytes: u64,
    /// Committed-quota ceiling as a multiple of `capacity_bytes`. `1.0`
    /// never overcommits; serving fleets typically run above it because
    /// tenants rarely peak together.
    pub overcommit: f64,
    /// What happens to arrivals past the ceiling.
    pub policy: AdmissionPolicy,
    /// Steps without allocation activity after which a tenant counts as
    /// idle — eligible for the rescue stage and the shed policy (clamped
    /// to at least 1 so a tenant mid-allocation is never idle).
    pub idle_after_steps: u64,
    /// Logical GPU streams to spread tenants across round-robin. Should
    /// not exceed the pool front-end's stream banks (extra streams
    /// degrade to cross-stream traffic, not errors).
    pub streams: u64,
    /// The step-cadence defragmentation knobs.
    pub defrag: DefragConfig,
}

impl ServingConfig {
    /// A config for a device of `capacity_bytes` with no overcommit, the
    /// [`AdmissionPolicy::Reject`] policy, 4 streams, an 8-step idle
    /// horizon, and default defrag cadence.
    pub fn new(capacity_bytes: u64) -> Self {
        ServingConfig {
            capacity_bytes,
            overcommit: 1.0,
            policy: AdmissionPolicy::Reject,
            idle_after_steps: 8,
            streams: 4,
            defrag: DefragConfig::default(),
        }
    }

    /// Sets the overcommit factor.
    #[must_use]
    pub fn with_overcommit(mut self, overcommit: f64) -> Self {
        self.overcommit = overcommit;
        self
    }

    /// Sets the admission policy.
    #[must_use]
    pub fn with_policy(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the idle horizon in steps.
    #[must_use]
    pub fn with_idle_after(mut self, steps: u64) -> Self {
        self.idle_after_steps = steps;
        self
    }

    /// Sets the stream fan-out.
    #[must_use]
    pub fn with_streams(mut self, streams: u64) -> Self {
        self.streams = streams;
        self
    }

    /// Sets the defrag cadence.
    #[must_use]
    pub fn with_defrag(mut self, defrag: DefragConfig) -> Self {
        self.defrag = defrag;
        self
    }

    /// The committed-quota ceiling in bytes.
    pub fn limit_bytes(&self) -> u64 {
        (self.capacity_bytes as f64 * self.overcommit) as u64
    }
}

/// What one [`ServingService::step`] did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepOutcome {
    /// The step number just completed (1-based).
    pub step: u64,
    /// Queued arrivals admitted this step.
    pub dequeued: u64,
    /// Queued arrivals that timed out this step.
    pub timed_out: u64,
    /// Bytes reclaimed by the defrag manager this step.
    pub defrag_reclaimed: u64,
}

/// Cumulative rescue/eviction counters of one service.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Idle tenants whose working sets the rescue stage dropped.
    pub tenants_evicted: u64,
    /// Bytes those evictions released.
    pub bytes_evicted: u64,
    /// Live allocations those evictions dropped.
    pub allocs_evicted: u64,
}

#[derive(Debug)]
struct ServingInner {
    pool: PoolHandle,
    cfg: ServingConfig,
    registry: TenantRegistry,
    admission: Mutex<AdmissionController>,
    /// Completed service steps (see [`ServingService::step`]).
    step: AtomicU64,
    /// Tenant arrivals + departures since the last step, feeding the
    /// defrag manager's churn window.
    churn_since_step: AtomicU64,
    defrag: Mutex<DefragManager>,
    evictions: Mutex<ServingStats>,
}

/// The tenant-aware stage-4 [`RescueHook`]: weak so the pool (which holds
/// the hook) never keeps the service alive, and never cyclic.
#[derive(Debug)]
struct TenantRescue(Weak<ServingInner>);

impl RescueHook for TenantRescue {
    fn rescue(&self, needed: u64) -> u64 {
        match self.0.upgrade() {
            Some(inner) => inner.flush_idle(needed),
            None => 0,
        }
    }
}

/// A multi-tenant serving front-end over one [`PoolHandle`].
///
/// Hundreds of concurrent jobs (tenants) share a device's pool; the
/// service keeps them honest and keeps them apart:
///
/// * **quotas** — every allocation is bracketed by an exact two-phase
///   byte-quota charge; a tenant over budget gets the recoverable
///   [`AllocError::QuotaExceeded`], never a device-level OOM that would
///   punish its neighbours;
/// * **admission** — arrivals commit their quota against
///   `capacity × overcommit`; past the ceiling they are rejected, queued
///   (bounded wait), or admitted by shedding idle tenants
///   ([`AdmissionPolicy`]);
/// * **rescue** — the service installs itself as the pool's stage-4
///   [`RescueHook`]: a real OOM first drops *idle* tenants' working sets
///   (oldest-idle first) before the failure can reach an active tenant;
/// * **defrag** — a step-cadence [`DefragManager`](crate::DefragConfig)
///   compacts periodically and escalates while tenant churn or
///   fragmentation is high.
///
/// Cloning is cheap and shares the service. All methods take `&self`.
///
/// ```
/// use gmlake_alloc_api::mib;
/// use gmlake_caching::CachingAllocator;
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
/// use gmlake_runtime::{DeviceId, PoolService};
/// use gmlake_serving::{ServingConfig, ServingService};
///
/// let service = PoolService::new();
/// let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
/// let pool = service.register(DeviceId(0), Box::new(CachingAllocator::new(driver)))?;
/// let serving = ServingService::new(pool, ServingConfig::new(mib(256)));
///
/// let tenant = serving.offer(mib(16)).tenant().expect("fits");
/// let a = serving.alloc(tenant, mib(4))?;
/// assert_eq!(serving.usage(tenant).unwrap().used_bytes, a.size);
/// serving.free(tenant, a.id)?;
/// serving.depart(tenant);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ServingService {
    inner: Arc<ServingInner>,
}

impl ServingService {
    /// Builds a serving front-end over `pool` and installs its tenant
    /// rescue hook as the pool's stage-4 OOM stage (replacing any
    /// previous hook).
    pub fn new(pool: PoolHandle, cfg: ServingConfig) -> Self {
        let inner = Arc::new(ServingInner {
            registry: TenantRegistry::new(cfg.streams),
            admission: Mutex::new(AdmissionController::new(cfg.limit_bytes(), cfg.policy)),
            step: AtomicU64::new(0),
            churn_since_step: AtomicU64::new(0),
            defrag: Mutex::new(DefragManager::new(cfg.defrag)),
            evictions: Mutex::new(ServingStats::default()),
            pool: pool.clone(),
            cfg,
        });
        pool.set_rescue_hook(Arc::new(TenantRescue(Arc::downgrade(&inner))));
        ServingService { inner }
    }

    /// The pool this service fronts.
    pub fn pool(&self) -> &PoolHandle {
        &self.inner.pool
    }

    /// Offers a tenant arrival committing `quota_bytes`. Fits are
    /// admitted immediately; past the ceiling the configured
    /// [`AdmissionPolicy`] decides (see [`AdmissionVerdict`]). Queued
    /// arrivals are retried by [`ServingService::step`].
    pub fn offer(&self, quota_bytes: u64) -> AdmissionVerdict {
        let inner = &self.inner;
        let now = inner.step.load(Ordering::Relaxed);
        let mut adm = inner.admission.lock();
        if adm.fits(inner.registry.committed_bytes(), quota_bytes) {
            let id = inner.admit(&mut adm, quota_bytes, now, 0);
            return AdmissionVerdict::Admitted(id);
        }
        match adm.policy {
            AdmissionPolicy::Reject => {
                adm.stats.rejected += 1;
                inner.emit(EventKind::TenantAdmission, quota_bytes, NO_TENANT, 1);
                AdmissionVerdict::Rejected
            }
            AdmissionPolicy::Queue { .. } => {
                adm.queue.push_back(QueuedArrival {
                    quota_bytes,
                    queued_at: now,
                });
                adm.stats.queued += 1;
                inner.emit(EventKind::TenantAdmission, quota_bytes, NO_TENANT, 2);
                AdmissionVerdict::Queued
            }
            AdmissionPolicy::Shed => {
                inner.shed_until_fits(&mut adm, quota_bytes, now);
                if adm.fits(inner.registry.committed_bytes(), quota_bytes) {
                    let id = inner.admit(&mut adm, quota_bytes, now, 3);
                    adm.stats.shed_admits += 1;
                    AdmissionVerdict::AdmittedAfterShed(id)
                } else {
                    adm.stats.rejected += 1;
                    inner.emit(EventKind::TenantAdmission, quota_bytes, NO_TENANT, 1);
                    AdmissionVerdict::Rejected
                }
            }
        }
    }

    /// Allocates `bytes` for `tenant` on the tenant's stream, bracketed
    /// by the exact two-phase quota charge.
    ///
    /// # Errors
    ///
    /// [`AllocError::QuotaExceeded`] — with exact requested/used/quota
    /// numbers — when the charge fails, *before* the device is consulted
    /// (or, for size-class rounding overruns, after an immediate
    /// rollback of the allocation, with `requested` set to the rounded
    /// size the allocator actually needed). Pool errors pass through; a
    /// reservation is never leaked.
    pub fn alloc(&self, tenant: TenantId, bytes: u64) -> Result<Allocation, AllocError> {
        let inner = &self.inner;
        let now = inner.step.load(Ordering::Relaxed);
        let stream = match inner.registry.try_reserve(tenant, bytes, now) {
            Ok(stream) => stream,
            Err(e) => return Err(charge_error(tenant, bytes, e)),
        };
        let a = match inner.pool.alloc_on_stream(AllocRequest::new(bytes), stream) {
            Ok(a) => a,
            Err(e) => {
                inner.registry.unreserve(tenant, bytes);
                return Err(e);
            }
        };
        match inner.registry.settle(tenant, a.id, bytes, a.size) {
            Ok(()) => Ok(a),
            Err(e) => {
                // Rounding pushed the tenant past its quota (or it departed
                // mid-flight): roll the allocation back before reporting.
                inner.pool.free_on_stream(a.id, stream)?;
                Err(charge_error(tenant, a.size, e))
            }
        }
    }

    /// Frees `id` for `tenant` from the tenant's own stream.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownAllocation`] when `id` is not live for
    /// `tenant` (never allocated, double-freed, or dropped by the rescue
    /// stage).
    pub fn free(&self, tenant: TenantId, id: AllocationId) -> Result<(), AllocError> {
        let (_, stream) = self
            .inner
            .registry
            .credit(tenant, id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        self.inner.pool.free_on_stream(id, stream)
    }

    /// Frees `id` for `tenant`, with the free issued from `stream` (a
    /// cross-stream free rides the pool's event-guarded pending rings,
    /// see [`DeviceAllocator::free_on_stream`]). Quota credit is
    /// immediate — the bytes are logically the tenant's no longer, even
    /// while the block waits for its event.
    ///
    /// # Errors
    ///
    /// [`AllocError::UnknownAllocation`] as for [`ServingService::free`].
    ///
    /// [`DeviceAllocator::free_on_stream`]: gmlake_alloc_api::DeviceAllocator::free_on_stream
    pub fn free_from(
        &self,
        tenant: TenantId,
        id: AllocationId,
        stream: StreamId,
    ) -> Result<(), AllocError> {
        self.inner
            .registry
            .credit(tenant, id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        self.inner.pool.free_on_stream(id, stream)
    }

    /// Departs `tenant`: frees its remaining live allocations, releases
    /// its quota commitment, and counts the churn. Returns the bytes
    /// released, or `None` for an unknown tenant.
    pub fn depart(&self, tenant: TenantId) -> Option<u64> {
        let inner = &self.inner;
        let (live, stream) = inner.registry.remove(tenant)?;
        let mut released = 0;
        for (id, size) in live {
            if inner.pool.free_on_stream(id, stream).is_ok() {
                released += size;
            }
        }
        inner.churn_since_step.fetch_add(1, Ordering::Relaxed);
        inner.emit(EventKind::TenantChurn, released, tenant.0, 0);
        Some(released)
    }

    /// Advances the service by one step: retries queued arrivals (FIFO,
    /// admitting while capacity allows), expires overdue ones, and runs
    /// the defrag manager with this step's churn count.
    pub fn step(&self) -> StepOutcome {
        let inner = &self.inner;
        let step = inner.step.fetch_add(1, Ordering::Relaxed) + 1;
        let mut outcome = StepOutcome {
            step,
            ..StepOutcome::default()
        };
        let mut adm = inner.admission.lock();
        while let Some(front) = adm.queue.front().copied() {
            if !adm.fits(inner.registry.committed_bytes(), front.quota_bytes) {
                break;
            }
            adm.queue.pop_front();
            inner.admit(&mut adm, front.quota_bytes, step, 0);
            outcome.dequeued += 1;
        }
        if let AdmissionPolicy::Queue { max_wait_steps } = adm.policy {
            for expired in adm.expire(step, max_wait_steps) {
                inner.emit(
                    EventKind::TenantAdmission,
                    expired.quota_bytes,
                    NO_TENANT,
                    4,
                );
                outcome.timed_out += 1;
            }
        }
        drop(adm);
        let churn = inner.churn_since_step.swap(0, Ordering::Relaxed);
        outcome.defrag_reclaimed = inner.defrag.lock().on_step(step, churn, &inner.pool);
        outcome
    }

    /// Completed steps.
    pub fn steps(&self) -> u64 {
        self.inner.step.load(Ordering::Relaxed)
    }

    /// Usage snapshot of one tenant.
    pub fn usage(&self, tenant: TenantId) -> Option<TenantUsage> {
        self.inner.registry.usage(tenant)
    }

    /// Usage snapshots of every registered tenant, ascending by id.
    pub fn usages(&self) -> Vec<(TenantId, TenantUsage)> {
        self.inner.registry.usages()
    }

    /// Registered tenants.
    pub fn tenant_count(&self) -> usize {
        self.inner.registry.len()
    }

    /// Sum of registered quotas.
    pub fn committed_bytes(&self) -> u64 {
        self.inner.registry.committed_bytes()
    }

    /// Sum of live bytes across every tenant — reconciles with the
    /// pool's `MemStats::active_bytes` at quiescence.
    pub fn used_bytes(&self) -> u64 {
        self.inner.registry.used_bytes()
    }

    /// Admission-control counters.
    pub fn admission_stats(&self) -> AdmissionStats {
        self.inner.admission.lock().stats
    }

    /// Arrivals currently waiting in the admission queue.
    pub fn queue_len(&self) -> usize {
        self.inner.admission.lock().queue.len()
    }

    /// Defrag-manager counters.
    pub fn defrag_stats(&self) -> DefragManagerStats {
        self.inner.defrag.lock().stats()
    }

    /// Rescue/eviction counters.
    pub fn serving_stats(&self) -> ServingStats {
        *self.inner.evictions.lock()
    }
}

impl ServingInner {
    /// Registers a tenant (capacity already checked), updating stats and
    /// telemetry. `verdict` is the admission event code (0 or 3).
    fn admit(
        &self,
        adm: &mut AdmissionController,
        quota_bytes: u64,
        now: u64,
        verdict: u64,
    ) -> TenantId {
        let (id, _) = self.registry.register(quota_bytes, now);
        adm.stats.admitted += 1;
        adm.stats.peak_tenants = adm.stats.peak_tenants.max(self.registry.len() as u64);
        self.churn_since_step.fetch_add(1, Ordering::Relaxed);
        self.emit(EventKind::TenantAdmission, quota_bytes, id.0, verdict);
        self.emit(EventKind::TenantChurn, quota_bytes, id.0, 1);
        id
    }

    /// The shed policy's hammer: departs idle tenants (oldest-idle first)
    /// until `quota_bytes` fits or no idle tenant remains.
    fn shed_until_fits(&self, adm: &mut AdmissionController, quota_bytes: u64, now: u64) {
        for tenant in self
            .registry
            .idle_tenants(now, self.cfg.idle_after_steps.max(1))
        {
            if adm.fits(self.registry.committed_bytes(), quota_bytes) {
                return;
            }
            let Some((live, stream)) = self.registry.remove(tenant) else {
                continue;
            };
            let mut released = 0;
            let dropped = live.len() as u64;
            for (id, size) in live {
                if self.pool.free_on_stream(id, stream).is_ok() {
                    released += size;
                }
            }
            adm.stats.tenants_shed += 1;
            self.churn_since_step.fetch_add(1, Ordering::Relaxed);
            self.emit(EventKind::TenantEvict, released, tenant.0, dropped);
            self.emit(EventKind::TenantChurn, released, tenant.0, 0);
        }
    }

    /// The stage-4 rescue: drops idle tenants' working sets (oldest-idle
    /// first, active tenants untouched) until `needed` bytes are credited
    /// back, then drains the pending rings so the retried allocation can
    /// actually reach the freed blocks. Unlike the shed policy this keeps
    /// the tenants registered — their quota commitment survives, only
    /// their (rebuildable) working set is gone.
    fn flush_idle(&self, needed: u64) -> u64 {
        let now = self.step.load(Ordering::Relaxed);
        let mut reclaimed = 0;
        for tenant in self
            .registry
            .idle_tenants(now, self.cfg.idle_after_steps.max(1))
        {
            if reclaimed >= needed {
                break;
            }
            let Some((live, stream)) = self.registry.drop_live(tenant) else {
                continue;
            };
            if live.is_empty() {
                continue;
            }
            let mut released = 0;
            let dropped = live.len() as u64;
            for (id, size) in live {
                if self.pool.free_on_stream(id, stream).is_ok() {
                    released += size;
                }
            }
            let mut ev = self.evictions.lock();
            ev.tenants_evicted += 1;
            ev.bytes_evicted += released;
            ev.allocs_evicted += dropped;
            drop(ev);
            self.emit(EventKind::TenantEvict, released, tenant.0, dropped);
            reclaimed += released;
        }
        if reclaimed > 0 {
            self.pool.process_events();
        }
        reclaimed
    }

    fn emit(&self, kind: EventKind, bytes: u64, a: u64, b: u64) {
        if let Some(tel) = self.pool.allocator().telemetry() {
            if tel.is_enabled() {
                tel.record(kind, bytes, a, b);
            }
        }
    }
}

/// Maps a registry charge refusal to the public error type.
fn charge_error(tenant: TenantId, requested: u64, e: ChargeError) -> AllocError {
    match e {
        ChargeError::UnknownTenant => {
            AllocError::InvalidConfig(format!("unknown or departed {tenant}"))
        }
        ChargeError::OverQuota { used, quota } => AllocError::QuotaExceeded {
            tenant: tenant.0,
            requested,
            used,
            quota,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::mib;
    use gmlake_caching::CachingAllocator;
    use gmlake_core::{GmLakeAllocator, GmLakeConfig};
    use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
    use gmlake_runtime::{DeviceId, PoolService};

    fn serving_over(cfg: ServingConfig) -> (ServingService, CudaDriver) {
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let pool = PoolService::new()
            .register(
                DeviceId(0),
                Box::new(GmLakeAllocator::new(
                    driver.clone(),
                    GmLakeConfig::default().with_frag_limit(mib(2)),
                )),
            )
            .unwrap();
        (ServingService::new(pool, cfg), driver)
    }

    #[test]
    fn quota_is_enforced_exactly_without_touching_the_device() {
        let (serving, driver) = serving_over(ServingConfig::new(mib(256)));
        let t = serving.offer(mib(10)).tenant().unwrap();
        let a = serving.alloc(t, mib(8)).unwrap();
        assert_eq!(a.size, mib(8));
        let calls_before = driver.stats();
        let err = serving.alloc(t, mib(4)).unwrap_err();
        assert_eq!(
            err,
            AllocError::QuotaExceeded {
                tenant: t.0,
                requested: mib(4),
                used: mib(8),
                quota: mib(10),
            }
        );
        assert_eq!(
            driver.stats(),
            calls_before,
            "refused before the device was consulted"
        );
        assert_eq!(serving.pool().stats().oom_count, 0);
        serving.free(t, a.id).unwrap();
        let b = serving.alloc(t, mib(10)).unwrap();
        assert_eq!(serving.usage(t).unwrap().used_bytes, mib(10), "exact fill");
        serving.free(t, b.id).unwrap();
    }

    #[test]
    fn rounding_overrun_is_rolled_back_and_reported_exactly() {
        // Quota of 1000 bytes: the 1000-byte request passes the reserve
        // phase but the small-path size class rounds it to 1024, past the
        // quota — the allocation must be rolled back, not kept.
        let (serving, _) = serving_over(ServingConfig::new(mib(256)));
        let t = serving.offer(1000).tenant().unwrap();
        let err = serving.alloc(t, 1000).unwrap_err();
        assert_eq!(
            err,
            AllocError::QuotaExceeded {
                tenant: t.0,
                requested: 1024,
                used: 0,
                quota: 1000,
            }
        );
        assert_eq!(serving.usage(t).unwrap().used_bytes, 0, "nothing leaked");
        assert_eq!(serving.pool().stats().active_bytes, 0, "rolled back");
    }

    #[test]
    fn double_free_and_foreign_free_are_refused() {
        let (serving, _) = serving_over(ServingConfig::new(mib(256)));
        let t1 = serving.offer(mib(8)).tenant().unwrap();
        let t2 = serving.offer(mib(8)).tenant().unwrap();
        let a = serving.alloc(t1, mib(4)).unwrap();
        assert_eq!(
            serving.free(t2, a.id).unwrap_err(),
            AllocError::UnknownAllocation(a.id),
            "a tenant cannot free another tenant's allocation"
        );
        serving.free(t1, a.id).unwrap();
        assert_eq!(
            serving.free(t1, a.id).unwrap_err(),
            AllocError::UnknownAllocation(a.id)
        );
    }

    #[test]
    fn reject_policy_refuses_past_the_ceiling() {
        let (serving, _) = serving_over(ServingConfig::new(mib(256)));
        assert!(serving.offer(mib(200)).tenant().is_some());
        assert_eq!(serving.offer(mib(100)), AdmissionVerdict::Rejected);
        assert!(serving.offer(mib(56)).tenant().is_some(), "exact fit");
        let s = serving.admission_stats();
        assert_eq!((s.admitted, s.rejected), (2, 1));
        assert_eq!(s.peak_tenants, 2);
    }

    #[test]
    fn overcommit_raises_the_ceiling() {
        let (serving, _) = serving_over(ServingConfig::new(mib(256)).with_overcommit(2.0));
        assert!(serving.offer(mib(300)).tenant().is_some());
        assert!(serving.offer(mib(212)).tenant().is_some());
        assert_eq!(serving.offer(mib(1)), AdmissionVerdict::Rejected);
        assert_eq!(serving.committed_bytes(), mib(512));
    }

    #[test]
    fn queue_policy_admits_when_capacity_frees_and_times_out() {
        let (serving, _) = serving_over(
            ServingConfig::new(mib(256)).with_policy(AdmissionPolicy::Queue { max_wait_steps: 2 }),
        );
        let t = serving.offer(mib(200)).tenant().unwrap();
        assert_eq!(serving.offer(mib(100)), AdmissionVerdict::Queued);
        assert_eq!(serving.offer(mib(120)), AdmissionVerdict::Queued);
        assert_eq!(serving.queue_len(), 2);
        // Nothing freed: the queue just waits.
        assert_eq!(serving.step().dequeued, 0);
        serving.depart(t);
        // FIFO: the 100 MiB arrival goes first, and 120 MiB then also fits.
        let out = serving.step();
        assert_eq!(out.dequeued, 2);
        assert_eq!(serving.tenant_count(), 2);
        // A fresh arrival overflows again and eventually times out.
        assert_eq!(serving.offer(mib(100)), AdmissionVerdict::Queued);
        let waited: u64 = (0..4).map(|_| serving.step().timed_out).sum();
        assert_eq!(waited, 1, "timed out after max_wait_steps");
        let s = serving.admission_stats();
        assert_eq!(s.queue_timeouts, 1);
        assert_eq!(s.queued, 3);
    }

    #[test]
    fn shed_policy_evicts_only_idle_tenants() {
        let (serving, _) = serving_over(
            ServingConfig::new(mib(256))
                .with_policy(AdmissionPolicy::Shed)
                .with_idle_after(2),
        );
        let idle = serving.offer(mib(150)).tenant().unwrap();
        let active = serving.offer(mib(60)).tenant().unwrap();
        let held = serving.alloc(idle, mib(20)).unwrap();
        // Advance past the idle horizon, keeping only `active` active.
        for _ in 0..3 {
            serving.step();
            let a = serving.alloc(active, mib(4)).unwrap();
            serving.free(active, a.id).unwrap();
        }
        // 100 MiB does not fit (210 committed of 256); shedding the idle
        // tenant (and its held allocation) makes room.
        let v = serving.offer(mib(100));
        assert!(matches!(v, AdmissionVerdict::AdmittedAfterShed(_)));
        assert!(serving.usage(idle).is_none(), "idle tenant shed");
        assert!(serving.usage(active).is_some(), "active tenant untouched");
        assert_eq!(serving.pool().stats().active_bytes, 0, "held alloc freed");
        let s = serving.admission_stats();
        assert_eq!((s.shed_admits, s.tenants_shed), (1, 1));
        let _ = held; // freed by the shed, not by us
                      // Shedding cannot touch active tenants: an impossible arrival is
                      // still rejected.
        assert_eq!(serving.offer(mib(256)), AdmissionVerdict::Rejected);
    }

    #[test]
    fn oom_rescue_drops_idle_tenants_before_failing_an_active_one() {
        // Two tenants whose quotas fit, but whose *working sets* cannot
        // coexist on the 256 MiB device: the idle one holds 160 MiB live;
        // the active one then needs 200 MiB. Only the tenant-aware
        // stage-4 rescue can save it — and it must pick the idle tenant.
        let (serving, _) = serving_over(
            ServingConfig::new(mib(256))
                .with_overcommit(2.0)
                .with_idle_after(2),
        );
        let idle = serving.offer(mib(200)).tenant().unwrap();
        let active = serving.offer(mib(256)).tenant().unwrap();
        let mut hoard = Vec::new();
        for _ in 0..4 {
            hoard.push(serving.alloc(idle, mib(40)).unwrap());
        }
        for _ in 0..3 {
            serving.step();
            let a = serving.alloc(active, mib(4)).unwrap();
            serving.free(active, a.id).unwrap();
        }
        let big = serving.alloc(active, mib(200)).unwrap();
        assert_eq!(big.size, mib(200));
        assert_eq!(
            serving.usage(idle).map(|u| u.used_bytes),
            Some(0),
            "idle tenant's working set dropped, tenant still registered"
        );
        let ev = serving.serving_stats();
        assert_eq!(ev.tenants_evicted, 1);
        assert!(ev.bytes_evicted >= mib(160));
        assert_eq!(serving.pool().fault_stats().rescues, 1);
        serving.free(active, big.id).unwrap();
        // The evicted ids are gone from the books: stale frees are refused.
        assert_eq!(
            serving.free(idle, hoard[0].id).unwrap_err(),
            AllocError::UnknownAllocation(hoard[0].id)
        );
    }

    #[test]
    fn departure_frees_live_allocations_and_counts_churn() {
        let (serving, _) = serving_over(ServingConfig::new(mib(256)));
        let t = serving.offer(mib(64)).tenant().unwrap();
        serving.alloc(t, mib(8)).unwrap();
        serving.alloc(t, mib(4)).unwrap();
        assert_eq!(serving.depart(t), Some(mib(12)));
        assert_eq!(serving.depart(t), None, "already gone");
        assert_eq!(serving.pool().stats().active_bytes, 0);
        assert_eq!(serving.committed_bytes(), 0);
        // Arrival + departure both counted as churn for the defrag window.
        let out = serving.step();
        assert_eq!(out.step, 1);
    }

    #[test]
    fn step_cadence_drives_the_defrag_manager() {
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let pool = PoolService::new()
            .register(DeviceId(0), Box::new(CachingAllocator::new(driver)))
            .unwrap();
        let serving = ServingService::new(
            pool,
            ServingConfig::new(mib(256)).with_defrag(DefragConfig {
                period_steps: 2,
                churn_window_steps: 4,
                aggressive_churn: u64::MAX,
                aggressive_frag: 1.1,
            }),
        );
        let t = serving.offer(mib(64)).tenant().unwrap();
        let a = serving.alloc(t, mib(16)).unwrap();
        serving.free(t, a.id).unwrap();
        assert!(serving.pool().stats().reserved_bytes >= mib(16));
        assert_eq!(serving.step().defrag_reclaimed, 0, "step 1: off cadence");
        let out = serving.step();
        assert!(out.defrag_reclaimed >= mib(16), "step 2: periodic compact");
        assert_eq!(serving.defrag_stats().periodic_passes, 1);
    }

    #[test]
    fn service_is_send_and_clone() {
        fn assert_send<T: Send + Sync + Clone>() {}
        assert_send::<ServingService>();
    }
}
