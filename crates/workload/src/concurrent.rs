//! Concurrent multi-rank replay: N data-parallel ranks on N OS threads,
//! each driving its own device's pool through a
//! [`PoolHandle`](gmlake_runtime::PoolHandle) of one shared
//! [`PoolService`].
//!
//! This is the paper's Figure 11 scale-out experiment made honest: instead
//! of replaying devices one after another, every rank gets a thread and the
//! whole fleet runs against the thread-safe runtime layer, with the
//! service's defrag scheduler (when configured) supervising all pools.
//!
//! ```
//! use gmlake_caching::CachingAllocator;
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_runtime::{DeviceId, PoolService};
//! use gmlake_workload::{
//!     ConcurrentReplayer, ModelSpec, RankSpec, StrategySet, TrainConfig,
//! };
//!
//! let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR).with_iterations(2);
//! let service = PoolService::new();
//! let ranks: Vec<RankSpec> = (0..2)
//!     .map(|rank| {
//!         let driver = CudaDriver::new(DeviceConfig::a100_80g());
//!         let device = DeviceId(rank);
//!         service
//!             .register(device, Box::new(CachingAllocator::new(driver.clone())))
//!             .unwrap();
//!         RankSpec::new(device, driver, cfg.clone())
//!     })
//!     .collect();
//! let report = ConcurrentReplayer::new(service).replay_ranks(ranks)?;
//! assert_eq!(report.ranks.len(), 2);
//! assert!(report.all_completed());
//! # Ok::<(), gmlake_runtime::RuntimeError>(())
//! ```

use gmlake_gpu_sim::{CudaDriver, DriverStats};
use gmlake_runtime::{DeviceId, PoolService, RuntimeError};

use crate::generator::TraceGenerator;
use crate::metrics::mean;
use crate::replay::{ReplayOptions, ReplayReport, Replayer};
use crate::strategy::TrainConfig;

/// One data-parallel rank of a scale-out run: which device it allocates on,
/// the driver owning that device's clock, and its training configuration.
#[derive(Debug, Clone)]
pub struct RankSpec {
    /// The rank's device in the pool service.
    pub device: DeviceId,
    /// Driver of the same device (for compute-phase clock advancement).
    pub driver: CudaDriver,
    /// The rank's training configuration. ZeRO-style data-parallel ranks
    /// replay statistically identical traces; keep one shared seed for
    /// mirrored ranks or vary it per rank for jittered ones.
    pub config: TrainConfig,
}

impl RankSpec {
    /// Bundles a rank description.
    pub fn new(device: DeviceId, driver: CudaDriver, config: TrainConfig) -> Self {
        RankSpec {
            device,
            driver,
            config,
        }
    }
}

/// One rank's outcome.
#[derive(Debug, Clone)]
pub struct RankReport {
    /// The rank's device.
    pub device: DeviceId,
    /// The full sequential-replayer report for this rank.
    pub report: ReplayReport,
    /// Per-API driver telemetry of the rank's device at the end of the
    /// replay. `driver_stats.total_calls()` is the number of driver
    /// lock round-trips the rank cost its device — the quantity the batched
    /// VMM entry points (`mem_create_batch` / `mem_map_range`) drive down.
    ///
    /// This is a *device-global* snapshot: it equals the rank's own traffic
    /// only under the standard one-rank-per-device setup (which every
    /// scale-out harness here uses). Ranks sharing a `DeviceId` would each
    /// see the combined device stats.
    pub driver_stats: DriverStats,
}

/// Aggregated outcome of a concurrent scale-out replay.
#[derive(Debug, Clone)]
pub struct ScaleoutReport {
    /// Per-rank reports, in the order the ranks were submitted.
    pub ranks: Vec<RankReport>,
}

impl ScaleoutReport {
    /// `true` when every rank finished without an OOM.
    pub fn all_completed(&self) -> bool {
        self.ranks.iter().all(|r| r.report.outcome.is_completed())
    }

    /// Largest per-rank peak reserved memory — the provisioning bound (every
    /// physical GPU must fit its rank's peak).
    pub fn max_peak_reserved(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.report.peak_reserved)
            .max()
            .unwrap_or(0)
    }

    /// Mean per-rank peak utilization ratio.
    pub fn mean_utilization(&self) -> f64 {
        let utils: Vec<f64> = self.ranks.iter().map(|r| r.report.utilization()).collect();
        mean(&utils)
    }

    /// Sum of the memory still reserved on every device when the replay
    /// ended — what the fleet hands to the next job. Defrag scheduling
    /// shows up here: proactive compaction returns idle caches, a
    /// no-defrag run keeps them.
    pub fn total_final_reserved(&self) -> u64 {
        self.ranks.iter().map(|r| r.report.final_reserved).sum()
    }

    /// Total driver calls across every rank's device (batched entry points
    /// count once — see [`DriverStats::total_calls`]). Assumes the standard
    /// one-rank-per-device fleet; see [`RankReport::driver_stats`].
    pub fn total_driver_calls(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.driver_stats.total_calls())
            .sum()
    }

    /// Mean per-rank driver-call count, for scale-out tables.
    pub fn mean_driver_calls(&self) -> f64 {
        let calls: Vec<f64> = self
            .ranks
            .iter()
            .map(|r| r.driver_stats.total_calls() as f64)
            .collect();
        mean(&calls)
    }

    /// Fleet steady-state throughput (samples per simulated second).
    ///
    /// Each rank's [`ReplayReport::throughput`] is already a *global*
    /// estimate — the sequential replayer scales samples per iteration by
    /// `batch × n_gpus` — so mirrored ranks are repeated measurements of
    /// the same quantity and the right aggregate is their mean, not their
    /// sum.
    pub fn fleet_throughput(&self) -> f64 {
        let throughputs: Vec<f64> = self.ranks.iter().map(|r| r.report.throughput).collect();
        mean(&throughputs)
    }
}

/// Drives N ranks on N OS threads against a [`PoolService`].
#[derive(Debug, Clone)]
pub struct ConcurrentReplayer {
    service: PoolService,
    options: ReplayOptions,
}

impl ConcurrentReplayer {
    /// Creates a replayer over `service` with default [`ReplayOptions`].
    pub fn new(service: PoolService) -> Self {
        ConcurrentReplayer {
            service,
            options: ReplayOptions::default(),
        }
    }

    /// Replaces the per-rank replay options.
    #[must_use]
    pub fn with_options(mut self, options: ReplayOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs every rank on its own OS thread and collects per-rank reports
    /// (submission order, regardless of thread scheduling).
    ///
    /// Each thread generates the rank's trace, resolves the rank's
    /// [`PoolHandle`](gmlake_runtime::PoolHandle) and replays through it
    /// with the sequential [`Replayer`] — one code path for both the
    /// single-threaded and the concurrent experiments.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::UnknownDevice`] if a rank names a device with no
    /// registered pool (checked up front: no thread is spawned on error).
    ///
    /// # Panics
    ///
    /// Propagates panics of rank threads (a replay only panics on allocator
    /// misbehaviour, which is itself a bug).
    pub fn replay_ranks(&self, ranks: Vec<RankSpec>) -> Result<ScaleoutReport, RuntimeError> {
        let jobs: Vec<_> = ranks
            .into_iter()
            .map(|spec| Ok((self.service.handle(spec.device)?, spec)))
            .collect::<Result<_, RuntimeError>>()?;
        let reports = std::thread::scope(|scope| {
            let threads: Vec<_> = jobs
                .into_iter()
                .map(|(mut handle, spec)| {
                    let options = self.options.clone();
                    scope.spawn(move || {
                        let trace = TraceGenerator::new(spec.config.clone()).generate();
                        let report = Replayer::new(spec.driver.clone())
                            .with_options(options)
                            .replay(&mut handle, &trace, &spec.config);
                        RankReport {
                            device: spec.device,
                            report,
                            driver_stats: spec.driver.stats(),
                        }
                    })
                })
                .collect();
            threads
                .into_iter()
                .map(|t| t.join().expect("rank thread panicked"))
                .collect()
        });
        Ok(ScaleoutReport { ranks: reports })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use crate::strategy::StrategySet;
    use gmlake_caching::CachingAllocator;
    use gmlake_core::{GmLakeAllocator, GmLakeConfig};
    use gmlake_gpu_sim::DeviceConfig;
    use gmlake_runtime::DefragScheduler;

    fn small_cfg() -> TrainConfig {
        TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
            .with_seq_len(256)
            .with_batch(2)
            .with_iterations(2)
    }

    fn build_ranks(service: &PoolService, n: u32, gmlake: bool) -> Vec<RankSpec> {
        let cfg = small_cfg();
        (0..n)
            .map(|rank| {
                let driver = CudaDriver::new(DeviceConfig::a100_80g());
                let device = DeviceId(rank);
                let alloc: Box<dyn gmlake_alloc_api::AllocatorCore + Send> = if gmlake {
                    Box::new(GmLakeAllocator::new(
                        driver.clone(),
                        GmLakeConfig::default(),
                    ))
                } else {
                    Box::new(CachingAllocator::new(driver.clone()))
                };
                service.register(device, alloc).unwrap();
                RankSpec::new(device, driver, cfg.clone())
            })
            .collect()
    }

    #[test]
    fn four_ranks_replay_concurrently_and_mirror() {
        let service = PoolService::new();
        let ranks = build_ranks(&service, 4, true);
        let report = ConcurrentReplayer::new(service)
            .replay_ranks(ranks)
            .unwrap();
        assert_eq!(report.ranks.len(), 4);
        assert!(report.all_completed());
        assert!(report.max_peak_reserved() > 0);
        assert!(report.mean_utilization() > 0.0);
        assert!(report.fleet_throughput() > 0.0);
        // Mirrored ranks (same seed, own devices) must agree exactly —
        // concurrency cannot leak between pools.
        for w in report.ranks.windows(2) {
            assert_eq!(w[0].report.peak_reserved, w[1].report.peak_reserved);
            assert_eq!(w[0].report.peak_active, w[1].report.peak_active);
            assert_eq!(
                w[0].driver_stats.total_calls(),
                w[1].driver_stats.total_calls()
            );
        }
        assert!(report.total_driver_calls() > 0);
        assert!(
            (report.mean_driver_calls() * 4.0 - report.total_driver_calls() as f64).abs() < 1e-6,
            "mirrored ranks: mean x ranks == total"
        );
        // Submission order is preserved.
        let devices: Vec<u32> = report.ranks.iter().map(|r| r.device.0).collect();
        assert_eq!(devices, vec![0, 1, 2, 3]);
    }

    #[test]
    fn multi_stream_ranks_replay_through_per_stream_pools() {
        use gmlake_alloc_api::{DeviceAllocator, DeviceAllocatorConfig, StreamId};
        use std::sync::Arc;
        // Two ranks, each replaying a 2-stream trace (offload staging on the
        // side stream, comm buffers freed cross-stream by their consumer)
        // against a stream-configured, event-backed front-end: the replay
        // must route per-stream, drive the pending→ready event transitions,
        // keep the accounting exact, and mirror across ranks exactly as the
        // single-stream fleet does.
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::RO)
            .with_seq_len(256)
            .with_batch(2)
            .with_iterations(2)
            .with_streams(2);
        let service = PoolService::new();
        let ranks: Vec<RankSpec> = (0..2)
            .map(|rank| {
                let driver = CudaDriver::new(DeviceConfig::a100_80g());
                let device = DeviceId(rank);
                let front = DeviceAllocator::with_config_and_events(
                    CachingAllocator::new(driver.clone()),
                    DeviceAllocatorConfig::default()
                        .with_streams(2)
                        .with_small_threshold(gmlake_alloc_api::mib(512)),
                    Arc::new(driver.clone()),
                );
                service.register_device(device, front).unwrap();
                RankSpec::new(device, driver, cfg.clone())
            })
            .collect();
        let report = ConcurrentReplayer::new(service.clone())
            .replay_ranks(ranks)
            .unwrap();
        assert!(report.all_completed());
        for w in report.ranks.windows(2) {
            assert_eq!(w[0].report.peak_reserved, w[1].report.peak_reserved);
        }
        for device in service.devices() {
            let handle = service.handle(device).unwrap();
            assert_eq!(handle.stats().active_bytes, 0);
            let side = handle.allocator().stream_cache_stats(StreamId(1));
            assert!(
                side.hits + side.misses > 0,
                "{device}: side-stream traffic rode stream 1's bank"
            );
            let c = handle.allocator().cache_stats();
            assert!(c.cross_stream_parked > 0, "{device}: events guarded frees");
            assert!(c.event_promotions > 0, "{device}: pending→ready happened");
            assert_eq!(c.pending_blocks, 0, "{device}: nothing left pending");
        }
    }

    #[test]
    fn unknown_device_fails_before_spawning() {
        let service = PoolService::new();
        let cfg = small_cfg();
        let orphan = RankSpec::new(DeviceId(9), CudaDriver::new(DeviceConfig::a100_80g()), cfg);
        let err = ConcurrentReplayer::new(service)
            .replay_ranks(vec![orphan])
            .unwrap_err();
        assert_eq!(err, RuntimeError::UnknownDevice(DeviceId(9)));
    }

    #[test]
    fn periodic_defrag_lowers_final_reserved_versus_no_defrag() {
        // The acceptance experiment in miniature: identical caching fleets,
        // one supervised by a periodic defrag scheduler, one not. The
        // supervised fleet must end with less memory still reserved.
        let run = |scheduled: bool| {
            let service = if scheduled {
                PoolService::with_scheduler(DefragScheduler::periodic(1))
            } else {
                PoolService::new()
            };
            let ranks = build_ranks(&service, 2, false);
            ConcurrentReplayer::new(service)
                .replay_ranks(ranks)
                .unwrap()
        };
        let plain = run(false);
        let defragged = run(true);
        assert!(plain.all_completed() && defragged.all_completed());
        assert!(
            defragged.total_final_reserved() < plain.total_final_reserved(),
            "defrag {} vs plain {}",
            defragged.total_final_reserved(),
            plain.total_final_reserved()
        );
    }
}
