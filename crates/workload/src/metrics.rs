//! Aggregate metrics used by the evaluation (§5.1).

/// The paper's memory-reduction ratio:
/// `(Σ Reserved − Σ GMLakeReserved) / Σ Reserved` over a set of workloads.
///
/// ```
/// let baseline = [100u64, 200];
/// let gmlake = [80u64, 160];
/// let r = gmlake_workload::mem_reduction_ratio(&baseline, &gmlake);
/// assert!((r - 0.2).abs() < 1e-12);
/// ```
pub fn mem_reduction_ratio(baseline_reserved: &[u64], gmlake_reserved: &[u64]) -> f64 {
    assert_eq!(
        baseline_reserved.len(),
        gmlake_reserved.len(),
        "paired workloads required"
    );
    let total: u64 = baseline_reserved.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let saved: i128 = baseline_reserved
        .iter()
        .zip(gmlake_reserved)
        .map(|(&b, &g)| b as i128 - g as i128)
        .sum();
    saved as f64 / total as f64
}

/// Bytes → GiB as a float, for report formatting.
pub fn to_gib(bytes: u64) -> f64 {
    bytes as f64 / (1u64 << 30) as f64
}

/// Arithmetic mean of a slice (0 when empty).
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduction_ratio_basic() {
        assert!((mem_reduction_ratio(&[100], &[67]) - 0.33).abs() < 1e-12);
        assert_eq!(mem_reduction_ratio(&[], &[]), 0.0);
    }

    #[test]
    fn reduction_ratio_can_be_negative() {
        // If GMLake somehow reserved more, the ratio goes negative instead of
        // silently clamping — regressions must be visible.
        assert!(mem_reduction_ratio(&[100], &[150]) < 0.0);
    }

    #[test]
    #[should_panic(expected = "paired")]
    fn reduction_ratio_requires_pairs() {
        mem_reduction_ratio(&[1, 2], &[1]);
    }

    #[test]
    fn gib_conversion() {
        assert_eq!(to_gib(1 << 30), 1.0);
        assert_eq!(to_gib(0), 0.0);
    }

    #[test]
    fn mean_handles_empty() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }
}
