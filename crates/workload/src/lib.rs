//! LLM fine-tuning memory workloads: model specs, strategy transformations,
//! trace generation, and replay.
//!
//! The GMLake paper's evaluation fine-tunes six open-source LLMs under
//! combinations of LoRA, recomputation (gradient checkpointing), and
//! ZeRO-Offload on DeepSpeed/FSDP/Colossal-AI. What the *allocator* sees of
//! all that is a stream of (de)allocation requests whose sizes, lifetimes and
//! irregularity depend on the configuration — and fragmentation is a pure
//! function of that stream. This crate reproduces the stream:
//!
//! * [`ModelSpec`] — the six models of Table 2 (OPT-1.3B … GPT-NeoX-20B);
//! * [`StrategySet`] / [`Platform`] / [`TrainConfig`] — the evaluation axes;
//! * [`TraceGenerator`] — ZeRO-3 fine-tuning as a tensor-granularity trace
//!   (persistent shards, gathers, activations, recompute bursts, offload
//!   staging), with strategy-dependent irregularity;
//! * [`Replayer`] — drives any [`AllocatorCore`](gmlake_alloc_api::AllocatorCore)
//!   and reports peak active/reserved memory, utilization, fragmentation,
//!   throughput, OOM outcome and a memory-over-time series;
//! * [`headline_suite`] — the 76-workload matrix behind the paper's headline
//!   savings numbers.
//!
//! ```
//! use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
//! use gmlake_caching::CachingAllocator;
//! use gmlake_workload::{ModelSpec, Replayer, StrategySet, TraceGenerator, TrainConfig};
//!
//! let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR).with_iterations(2);
//! let trace = TraceGenerator::new(cfg.clone()).generate();
//! let driver = CudaDriver::new(DeviceConfig::a100_80g());
//! let mut baseline = CachingAllocator::new(driver.clone());
//! let report = Replayer::new(driver).replay(&mut baseline, &trace, &cfg);
//! println!("fragmentation: {:.1}%", report.fragmentation() * 100.0);
//! ```

mod concurrent;
mod generator;
mod metrics;
mod model;
mod replay;
mod serving;
mod strategy;
mod suite;
mod timing;
mod trace;

pub use concurrent::{ConcurrentReplayer, RankReport, RankSpec, ScaleoutReport};
pub use generator::TraceGenerator;
pub use metrics::{mean, mem_reduction_ratio, to_gib};
pub use model::ModelSpec;
pub use replay::{ReplayOptions, ReplayOutcome, ReplayReport, Replayer, Sample};
pub use serving::{
    PlannedTenant, ServingPlan, ServingReplayer, ServingReport, ServingWorkloadConfig,
};
pub use strategy::{Platform, StrategySet, TrainConfig};
pub use suite::{headline_suite, table2, Table2Row};
pub use timing::{ideal_iteration_ns, layer_timing, optimizer_ns, pcie_ns, LayerTiming};
pub use trace::{TagBreakdown, Trace, TraceEvent, TraceStats};
