//! Trace replayer: drives any [`AllocatorCore`] with a [`Trace`] and collects
//! the metrics the paper reports — peak active/reserved memory, utilization
//! and fragmentation ratios, throughput, time series, and OOM outcomes.

use std::collections::HashMap;

use gmlake_alloc_api::{AllocError, AllocRequest, AllocationId, AllocatorCore, StreamId};
use gmlake_gpu_sim::CudaDriver;

use crate::trace::{Trace, TraceEvent, TraceStats};

/// Replay policy knobs.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Record an `(time, active, reserved)` sample stream (Figure 14).
    pub record_series: bool,
    /// Keep every `series_stride`-th sample to bound memory.
    pub series_stride: usize,
    /// Stop at the first out-of-memory failure (the paper's runs terminate
    /// on OOM). When `false`, failed allocations are skipped and counted.
    pub stop_on_oom: bool,
    /// Tolerate rolled-back driver faults
    /// ([`AllocError::DriverFault`]): the allocation is skipped and counted
    /// in [`ReplayReport::faulted_allocs`] and the replay continues — the
    /// fault-injection (chaos) harness runs with this on. When `false`
    /// (default) a driver fault is a harness bug and panics.
    pub skip_on_fault: bool,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            record_series: false,
            series_stride: 8,
            stop_on_oom: true,
            skip_on_fault: false,
        }
    }
}

/// How a replay ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayOutcome {
    /// Every event was executed.
    Completed,
    /// The allocator ran out of memory.
    Oom {
        /// Iteration during which the failure happened (0-based).
        iteration: u32,
        /// Index of the failing event within the trace.
        event_index: usize,
    },
}

impl ReplayOutcome {
    /// `true` when the replay finished without an OOM.
    pub fn is_completed(&self) -> bool {
        matches!(self, ReplayOutcome::Completed)
    }
}

/// One point of the memory-over-time series (Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sample {
    /// Simulated time.
    pub t_ns: u64,
    /// Active bytes at that instant.
    pub active: u64,
    /// Reserved bytes at that instant.
    pub reserved: u64,
}

/// Everything measured during one replay.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Allocator name (`AllocatorCore::name`).
    pub allocator: &'static str,
    /// Trace label.
    pub label: String,
    /// Completion or OOM.
    pub outcome: ReplayOutcome,
    /// Peak bytes allocated to live tensors.
    pub peak_active: u64,
    /// Peak bytes reserved on the device.
    pub peak_reserved: u64,
    /// Bytes still reserved when the replay ended — what a defrag pass (or
    /// the lack of one) leaves behind for the next workload on the device.
    pub final_reserved: u64,
    /// Iterations that fully completed.
    pub iterations_completed: u32,
    /// Simulated wall time of the whole replay.
    pub sim_time_ns: u64,
    /// Simulated time spent inside driver allocation calls.
    pub allocator_ns: u64,
    /// Global training throughput in samples per simulated second
    /// (0 when no iteration completed).
    pub throughput: f64,
    /// Allocations that failed and were skipped (only with
    /// `stop_on_oom = false`).
    pub skipped_allocs: u64,
    /// Allocations that failed with a rolled-back driver fault and were
    /// skipped (only with `skip_on_fault = true`).
    pub faulted_allocs: u64,
    /// Memory-over-time samples (empty unless `record_series`).
    pub series: Vec<Sample>,
    /// Statistics of the trace that was replayed.
    pub trace_stats: TraceStats,
}

impl ReplayReport {
    /// Peak utilization ratio (peak active / peak reserved), the paper's §5.1
    /// metric.
    pub fn utilization(&self) -> f64 {
        if self.peak_reserved == 0 {
            1.0
        } else {
            self.peak_active as f64 / self.peak_reserved as f64
        }
    }

    /// Fragmentation ratio `1 − utilization`.
    pub fn fragmentation(&self) -> f64 {
        1.0 - self.utilization()
    }
}

/// Replays traces against allocators sharing one simulated device.
///
/// ```
/// use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
/// use gmlake_caching::CachingAllocator;
/// use gmlake_workload::{ModelSpec, Replayer, StrategySet, TraceGenerator, TrainConfig};
///
/// let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR).with_iterations(2);
/// let trace = TraceGenerator::new(cfg.clone()).generate();
/// let driver = CudaDriver::new(DeviceConfig::a100_80g());
/// let mut alloc = CachingAllocator::new(driver.clone());
/// let report = Replayer::new(driver).replay(&mut alloc, &trace, &cfg);
/// assert!(report.outcome.is_completed());
/// assert!(report.utilization() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Replayer {
    driver: CudaDriver,
    options: ReplayOptions,
}

impl Replayer {
    /// Creates a replayer on `driver` with default options.
    pub fn new(driver: CudaDriver) -> Self {
        Replayer {
            driver,
            options: ReplayOptions::default(),
        }
    }

    /// Replaces the options.
    #[must_use]
    pub fn with_options(mut self, options: ReplayOptions) -> Self {
        self.options = options;
        self
    }

    /// Runs `trace` against `alloc`. `cfg` supplies the per-iteration sample
    /// count (`batch × gpus`) for throughput accounting.
    pub fn replay(
        &self,
        alloc: &mut dyn AllocatorCore,
        trace: &Trace,
        cfg: &crate::strategy::TrainConfig,
    ) -> ReplayReport {
        let samples_per_iter = cfg.batch_size as u64 * cfg.n_gpus as u64;
        self.replay_with_samples(alloc, trace, samples_per_iter)
    }

    /// Like [`Replayer::replay`], with an explicit samples-per-iteration.
    pub fn replay_with_samples(
        &self,
        alloc: &mut dyn AllocatorCore,
        trace: &Trace,
        samples_per_iter: u64,
    ) -> ReplayReport {
        let t_start = self.driver.now_ns();
        let drv_before = self.driver.stats().allocator_time_ns();
        // key -> (allocator id, allocating stream): surviving tensors are
        // released on their own stream so the cleanup stays on the warm path.
        let mut ids: HashMap<u64, (AllocationId, StreamId)> = HashMap::new();
        let mut outcome = ReplayOutcome::Completed;
        let mut iterations_completed = 0u32;
        let mut current_iter = 0u32;
        let mut first_iter_t = None;
        let mut iter_end_ts: Vec<u64> = Vec::new();
        let mut skipped = 0u64;
        let mut faulted = 0u64;
        let mut series = Vec::new();
        let mut since_sample = 0usize;

        'events: for (i, ev) in trace.events.iter().enumerate() {
            match *ev {
                TraceEvent::Alloc {
                    key,
                    size,
                    tag,
                    stream,
                } => {
                    // Stream-aware front-ends route to the stream's cache
                    // bank; stream-oblivious cores ignore the stream (the
                    // AllocatorCore default delegates to `allocate`).
                    match alloc.alloc_on_stream(AllocRequest::new(size).with_tag(tag), stream) {
                        Ok(a) => {
                            ids.insert(key, (a.id, stream));
                        }
                        Err(AllocError::OutOfMemory { .. }) => {
                            if self.options.stop_on_oom {
                                outcome = ReplayOutcome::Oom {
                                    iteration: current_iter,
                                    event_index: i,
                                };
                                break 'events;
                            }
                            skipped += 1;
                        }
                        Err(AllocError::DriverFault { .. }) if self.options.skip_on_fault => {
                            faulted += 1;
                        }
                        Err(e) => panic!("replay hit a non-OOM allocator error: {e}"),
                    }
                }
                TraceEvent::Free { key, stream } => {
                    if let Some((id, _)) = ids.remove(&key) {
                        match alloc.free_on_stream(id, stream) {
                            Ok(()) => {}
                            Err(AllocError::DriverFault { .. }) if self.options.skip_on_fault => {
                                // The core rolled the free back, so the
                                // tensor is still live; park it for the
                                // final drain (the fault, if transient,
                                // is consumed by then).
                                faulted += 1;
                                ids.insert(key, (id, stream));
                            }
                            Err(e) => panic!("replayer frees only live allocations: {e}"),
                        }
                    }
                }
                // Compute is launched ASYNCHRONOUSLY on the default stream,
                // the way a framework enqueues kernels: the stream's
                // completion frontier advances by the full duration while
                // the host runs ahead. Events recorded by cross-stream
                // frees during the phase therefore stay genuinely pending
                // until the host catches up at the iteration boundary.
                TraceEvent::Compute { ns } => self.driver.stream_launch(StreamId::DEFAULT, ns),
                TraceEvent::IterBegin { index } => {
                    current_iter = index;
                    if first_iter_t.is_none() {
                        first_iter_t = Some(self.driver.now_ns());
                    }
                }
                TraceEvent::IterEnd { .. } => {
                    // The optimizer step synchronizes the device (the host
                    // blocks until every stream's work is done), completing
                    // the iteration's events; the process_events tick then
                    // promotes cross-stream blocks parked during the
                    // iteration so the next one reuses them warm.
                    self.driver.device_synchronize();
                    alloc.iteration_boundary();
                    alloc.process_events();
                    iterations_completed += 1;
                    iter_end_ts.push(self.driver.now_ns());
                }
            }
            if self.options.record_series
                && matches!(ev, TraceEvent::Alloc { .. } | TraceEvent::Free { .. })
            {
                since_sample += 1;
                if since_sample >= self.options.series_stride {
                    since_sample = 0;
                    let s = alloc.stats();
                    series.push(Sample {
                        t_ns: self.driver.now_ns() - t_start,
                        active: s.active_bytes,
                        reserved: s.reserved_bytes,
                    });
                }
            }
        }

        // Catch the host up with any trailing in-flight work (an OOM may
        // have cut the trace short mid-iteration) so the reported sim time
        // covers every launched phase.
        self.driver.device_synchronize();
        alloc.process_events();
        // Release surviving allocations so the allocator can be reused (the
        // trace itself frees everything unless it was cut short by OOM).
        for (_, (id, stream)) in ids.drain() {
            // One retry absorbs a transient fault consumed by the first
            // attempt; anything else is best-effort cleanup.
            if alloc.free_on_stream(id, stream).is_err() {
                let _ = alloc.free_on_stream(id, stream);
            }
        }

        let stats = alloc.stats();
        let sim_time_ns = self.driver.now_ns() - t_start;
        let allocator_ns = self.driver.stats().allocator_time_ns() - drv_before;
        // Steady-state throughput: once at least four iterations completed,
        // measure over the second half only, excluding the warm-up in which
        // GMLake builds its block pools (the paper reports post-convergence
        // throughput; Figure 14 "after four iterations GMLake reaches
        // stability and achieves the same throughput as PyTorch").
        let throughput = match (first_iter_t, iter_end_ts.len()) {
            (Some(_), n) if n >= 4 => {
                let mid = n / 2;
                let span_s = (iter_end_ts[n - 1] - iter_end_ts[mid - 1]) as f64 / 1e9;
                if span_s > 0.0 {
                    ((n - mid) as u64 * samples_per_iter) as f64 / span_s
                } else {
                    0.0
                }
            }
            (Some(t0), n) if n > 0 => {
                let span_s = (iter_end_ts[n - 1] - t0) as f64 / 1e9;
                if span_s > 0.0 {
                    (n as u64 * samples_per_iter) as f64 / span_s
                } else {
                    0.0
                }
            }
            _ => 0.0,
        };
        ReplayReport {
            allocator: alloc.name(),
            label: trace.label.clone(),
            outcome,
            peak_active: stats.peak_active_bytes,
            peak_reserved: stats.peak_reserved_bytes,
            final_reserved: stats.reserved_bytes,
            iterations_completed,
            sim_time_ns,
            allocator_ns,
            throughput,
            skipped_allocs: skipped,
            faulted_allocs: faulted,
            series,
            trace_stats: trace.stats(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::TraceGenerator;
    use crate::model::ModelSpec;
    use crate::strategy::{StrategySet, TrainConfig};
    use gmlake_alloc_api::gib;
    use gmlake_caching::CachingAllocator;
    use gmlake_gpu_sim::{DeviceConfig, NativeAllocator};

    fn small_cfg() -> TrainConfig {
        TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR).with_iterations(2)
    }

    fn a100() -> CudaDriver {
        CudaDriver::new(DeviceConfig::a100_80g())
    }

    #[test]
    fn caching_replay_completes_and_reports() {
        let cfg = small_cfg();
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let driver = a100();
        let mut alloc = CachingAllocator::new(driver.clone());
        let report = Replayer::new(driver.clone()).replay(&mut alloc, &trace, &cfg);
        assert!(report.outcome.is_completed());
        assert_eq!(report.iterations_completed, 2);
        assert!(report.peak_active > 0);
        assert!(report.peak_reserved >= report.peak_active);
        assert!(report.throughput > 0.0, "throughput {}", report.throughput);
        assert!(report.utilization() > 0.0 && report.utilization() <= 1.0);
        // Peak active can never beat the trace's ideal packing bound...
        assert!(report.peak_active >= trace.stats().peak_live_bytes);
        // All tensors were freed by the trace; allocator should be empty.
        assert_eq!(alloc.stats().active_bytes, 0);
    }

    #[test]
    fn series_recording_respects_stride() {
        let cfg = small_cfg();
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let driver = a100();
        let mut alloc = CachingAllocator::new(driver.clone());
        let opts = ReplayOptions {
            record_series: true,
            series_stride: 4,
            ..ReplayOptions::default()
        };
        let report = Replayer::new(driver)
            .with_options(opts)
            .replay(&mut alloc, &trace, &cfg);
        let allocs_frees = trace.stats().allocs + trace.stats().frees;
        assert!(!report.series.is_empty());
        assert!(report.series.len() as u64 <= allocs_frees / 4 + 1);
        // Time is monotone.
        for w in report.series.windows(2) {
            assert!(w[0].t_ns <= w[1].t_ns);
        }
    }

    #[test]
    fn oom_stops_the_replay_on_tiny_device() {
        let cfg = small_cfg();
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let driver = CudaDriver::new(
            DeviceConfig::a100_80g().with_capacity(gib(1)), // far too small
        );
        let mut alloc = CachingAllocator::new(driver.clone());
        let report = Replayer::new(driver).replay(&mut alloc, &trace, &cfg);
        assert!(matches!(report.outcome, ReplayOutcome::Oom { .. }));
        assert_eq!(report.iterations_completed, 0);
        assert_eq!(report.throughput, 0.0);
    }

    #[test]
    fn skip_mode_counts_failures_and_continues() {
        let cfg = small_cfg();
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let driver = CudaDriver::new(DeviceConfig::a100_80g().with_capacity(gib(1)));
        let mut alloc = CachingAllocator::new(driver.clone());
        let opts = ReplayOptions {
            stop_on_oom: false,
            ..ReplayOptions::default()
        };
        let report = Replayer::new(driver)
            .with_options(opts)
            .replay(&mut alloc, &trace, &cfg);
        assert!(report.outcome.is_completed(), "skip mode never stops");
        assert!(report.skipped_allocs > 0);
    }

    #[test]
    fn native_allocator_is_dramatically_slower() {
        // The paper: native allocator ≈ 10× lower throughput than caching.
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::R).with_iterations(2);
        let trace = TraceGenerator::new(cfg.clone()).generate();

        let d1 = a100();
        let mut caching = CachingAllocator::new(d1.clone());
        let r_caching = Replayer::new(d1).replay(&mut caching, &trace, &cfg);

        let d2 = a100();
        let mut native = NativeAllocator::new(d2.clone());
        let r_native = Replayer::new(d2).replay(&mut native, &trace, &cfg);

        assert!(r_caching.outcome.is_completed() && r_native.outcome.is_completed());
        let slowdown = r_caching.throughput / r_native.throughput;
        assert!(
            slowdown > 3.0,
            "native should be several times slower, got {slowdown:.1}x \
             (caching {:.2}, native {:.2} samples/s)",
            r_caching.throughput,
            r_native.throughput
        );
    }

    #[test]
    fn multi_stream_trace_routes_into_per_stream_banks() {
        use gmlake_alloc_api::{DeviceAllocator, DeviceAllocatorConfig};
        use std::sync::Arc;
        // Offload (RO) generates communication + staging tensors, which the
        // generator moves to side streams; replaying through a stream-aware
        // front-end must land that traffic in the side-stream cache banks.
        // Comm buffers are freed by their consumer (the default stream), so
        // the replay also exercises the event-guarded cross-stream path:
        // frees park blocks behind events recorded on the compute stream,
        // whose in-flight phases keep them pending until the iteration
        // boundary synchronizes and promotes them.
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::RO)
            .with_iterations(2)
            .with_seq_len(256)
            .with_batch(2)
            .with_streams(2);
        let trace = TraceGenerator::new(cfg.clone()).generate();
        assert_eq!(trace.stats().streams, 2);
        let driver = a100();
        // Comm/staging tensors run tens-to-hundreds of MiB; raise the
        // fast-path threshold so the side-stream traffic is visible in the
        // stream banks instead of falling through to the core.
        let mut pool = DeviceAllocator::with_config_and_events(
            CachingAllocator::new(driver.clone()),
            DeviceAllocatorConfig::default()
                .with_streams(2)
                .with_small_threshold(gmlake_alloc_api::mib(512)),
            Arc::new(driver.clone()),
        );
        let report = Replayer::new(driver.clone()).replay(&mut pool, &trace, &cfg);
        assert!(report.outcome.is_completed());
        let side = pool.stream_cache_stats(StreamId(1));
        assert!(
            side.hits + side.misses > 0,
            "side-stream traffic reached stream 1's bank"
        );
        let c = pool.cache_stats();
        assert!(
            c.cross_stream_parked > 0,
            "comm frees rode the event-guarded path"
        );
        assert!(
            c.event_promotions > 0,
            "completed events promoted parked blocks back to their banks"
        );
        assert_eq!(
            c.pending_blocks, 0,
            "the final device sync left nothing pending"
        );
        assert_eq!(AllocatorCore::stats(&pool).active_bytes, 0);
        assert_eq!(driver.outstanding_events(), 0, "no event leaked");
    }

    #[test]
    fn allocator_time_is_tracked_separately() {
        let cfg = small_cfg();
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let driver = a100();
        let mut alloc = NativeAllocator::new(driver.clone());
        let report = Replayer::new(driver).replay(&mut alloc, &trace, &cfg);
        assert!(report.allocator_ns > 0);
        assert!(report.allocator_ns <= report.sim_time_ns);
    }
}
