//! Memory trace representation: the (de)allocation request stream a training
//! run issues to the allocator, plus the statistics the paper reports about
//! such streams (Figure 5).

use gmlake_alloc_api::{AllocTag, StreamId};

/// One event in a memory trace. `key` identifies a logical tensor within the
/// trace (the replayer maps it to whatever `AllocationId` the allocator
/// hands back).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceEvent {
    /// Allocate `size` bytes for tensor `key`.
    Alloc {
        /// Logical tensor id, unique among live tensors.
        key: u64,
        /// Tensor size in bytes.
        size: u64,
        /// Telemetry tag.
        tag: AllocTag,
        /// Logical GPU stream the allocation is issued on (communication /
        /// offload traffic overlaps compute on side streams; everything
        /// else runs on [`StreamId::DEFAULT`]).
        stream: StreamId,
    },
    /// Free tensor `key`.
    Free {
        /// Logical tensor id.
        key: u64,
        /// Stream the free is issued from — the tensor's *consumer*. The
        /// generator frees most tensors on their allocating stream, but
        /// communication buffers are consumed by compute and freed from
        /// the default stream: a **cross-stream free** (different stream
        /// than the tensor's `Alloc`), which exercises the allocator's
        /// event-guarded reuse rule.
        stream: StreamId,
    },
    /// Computation (kernel execution / communication / PCIe transfer) taking
    /// `ns` simulated nanoseconds.
    Compute {
        /// Duration in nanoseconds.
        ns: u64,
    },
    /// A training iteration starts.
    IterBegin {
        /// Iteration index, from 0.
        index: u32,
    },
    /// A training iteration ended (the replayer forwards this to
    /// `AllocatorCore::iteration_boundary`).
    IterEnd {
        /// Iteration index, from 0.
        index: u32,
    },
}

/// A complete request stream plus its provenance label.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    /// Human-readable description (model/strategies/platform).
    pub label: String,
    /// The event stream.
    pub events: Vec<TraceEvent>,
}

/// Peak live bytes per allocation tag — a memory breakdown by tensor
/// category (weights / activations / gradients / optimizer / staging …).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TagBreakdown {
    peaks: std::collections::HashMap<AllocTag, u64>,
}

impl TagBreakdown {
    /// Peak live bytes recorded for `tag`.
    pub fn peak(&self, tag: AllocTag) -> u64 {
        self.peaks.get(&tag).copied().unwrap_or(0)
    }

    /// All `(tag, peak)` pairs with nonzero peaks, largest first.
    pub fn sorted(&self) -> Vec<(AllocTag, u64)> {
        let mut v: Vec<_> = self
            .peaks
            .iter()
            .filter(|(_, &b)| b > 0)
            .map(|(&t, &b)| (t, b))
            .collect();
        v.sort_by_key(|&(_, b)| std::cmp::Reverse(b));
        v
    }
}

/// Aggregate statistics of a trace — the quantities behind the paper's
/// Figure 5 ("46 thousand allocations with a size of 93 MB on average").
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TraceStats {
    /// Number of `Alloc` events.
    pub allocs: u64,
    /// Number of `Free` events.
    pub frees: u64,
    /// Total allocated bytes (sum of all `Alloc` sizes).
    pub alloc_bytes: u64,
    /// Mean allocation size in bytes.
    pub mean_alloc: u64,
    /// Peak concurrently-live bytes (ideal packing lower bound — the least
    /// memory *any* allocator could use).
    pub peak_live_bytes: u64,
    /// Allocations smaller than 2 MiB (served by the small pool).
    pub small_allocs: u64,
    /// Number of iterations contained in the trace.
    pub iterations: u32,
    /// Total `Compute` nanoseconds.
    pub compute_ns: u64,
    /// Number of distinct streams allocations are issued on (1 for a
    /// single-stream trace).
    pub streams: u32,
}

impl Trace {
    /// Creates an empty trace with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Trace {
            label: label.into(),
            events: Vec::new(),
        }
    }

    /// Computes peak live bytes per allocation tag (memory breakdown by
    /// tensor category).
    pub fn tag_breakdown(&self) -> TagBreakdown {
        let mut live: std::collections::HashMap<u64, (AllocTag, u64)> =
            std::collections::HashMap::new();
        let mut live_by_tag: std::collections::HashMap<AllocTag, u64> =
            std::collections::HashMap::new();
        let mut out = TagBreakdown::default();
        for ev in &self.events {
            match *ev {
                TraceEvent::Alloc { key, size, tag, .. } => {
                    live.insert(key, (tag, size));
                    let cur = live_by_tag.entry(tag).or_insert(0);
                    *cur += size;
                    let peak = out.peaks.entry(tag).or_insert(0);
                    if *cur > *peak {
                        *peak = *cur;
                    }
                }
                TraceEvent::Free { key, .. } => {
                    if let Some((tag, size)) = live.remove(&key) {
                        *live_by_tag.entry(tag).or_insert(0) -= size;
                    }
                }
                _ => {}
            }
        }
        out
    }

    /// Computes aggregate statistics in one pass.
    pub fn stats(&self) -> TraceStats {
        let mut s = TraceStats::default();
        let mut live: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        let mut streams: std::collections::HashSet<StreamId> = std::collections::HashSet::new();
        let mut live_bytes = 0u64;
        for ev in &self.events {
            match *ev {
                TraceEvent::Alloc {
                    key, size, stream, ..
                } => {
                    streams.insert(stream);
                    s.allocs += 1;
                    s.alloc_bytes += size;
                    if size < 2 * 1024 * 1024 {
                        s.small_allocs += 1;
                    }
                    live.insert(key, size);
                    live_bytes += size;
                    if live_bytes > s.peak_live_bytes {
                        s.peak_live_bytes = live_bytes;
                    }
                }
                TraceEvent::Free { key, .. } => {
                    s.frees += 1;
                    if let Some(size) = live.remove(&key) {
                        live_bytes -= size;
                    }
                }
                TraceEvent::Compute { ns } => s.compute_ns += ns,
                TraceEvent::IterEnd { .. } => s.iterations += 1,
                TraceEvent::IterBegin { .. } => {}
            }
        }
        s.mean_alloc = s.alloc_bytes.checked_div(s.allocs).unwrap_or(0);
        s.streams = streams.len() as u32;
        s
    }

    /// Checks well-formedness: every `Free` names a live tensor, no key is
    /// allocated twice while live, and iteration markers nest properly.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed event.
    pub fn validate(&self) -> Result<(), String> {
        let mut live: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut in_iter = false;
        for (i, ev) in self.events.iter().enumerate() {
            match *ev {
                TraceEvent::Alloc { key, size, .. } => {
                    if size == 0 {
                        return Err(format!("event {i}: zero-size alloc for key {key}"));
                    }
                    if !live.insert(key) {
                        return Err(format!("event {i}: key {key} allocated while live"));
                    }
                }
                TraceEvent::Free { key, .. } => {
                    if !live.remove(&key) {
                        return Err(format!("event {i}: free of unknown key {key}"));
                    }
                }
                TraceEvent::IterBegin { .. } => {
                    if in_iter {
                        return Err(format!("event {i}: nested IterBegin"));
                    }
                    in_iter = true;
                }
                TraceEvent::IterEnd { .. } => {
                    if !in_iter {
                        return Err(format!("event {i}: IterEnd without IterBegin"));
                    }
                    in_iter = false;
                }
                TraceEvent::Compute { .. } => {}
            }
        }
        if in_iter {
            return Err("trace ends inside an iteration".to_owned());
        }
        if !live.is_empty() {
            return Err(format!("{} tensors leaked at end of trace", live.len()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::mib;

    fn ev_alloc(key: u64, size: u64) -> TraceEvent {
        TraceEvent::Alloc {
            key,
            size,
            tag: AllocTag::Unspecified,
            stream: StreamId::DEFAULT,
        }
    }

    #[test]
    fn stats_track_peak_live() {
        let mut t = Trace::new("test");
        t.events = vec![
            TraceEvent::IterBegin { index: 0 },
            ev_alloc(1, mib(10)),
            ev_alloc(2, mib(20)),
            TraceEvent::Free {
                key: 1,
                stream: StreamId::DEFAULT,
            },
            ev_alloc(3, mib(5)),
            TraceEvent::Compute { ns: 42 },
            TraceEvent::Free {
                key: 2,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Free {
                key: 3,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::IterEnd { index: 0 },
        ];
        t.validate().unwrap();
        let s = t.stats();
        assert_eq!(s.allocs, 3);
        assert_eq!(s.frees, 3);
        assert_eq!(s.peak_live_bytes, mib(30));
        assert_eq!(s.mean_alloc, mib(35) / 3);
        assert_eq!(s.iterations, 1);
        assert_eq!(s.compute_ns, 42);
        assert_eq!(s.small_allocs, 0);
        assert_eq!(s.streams, 1, "all allocations on the default stream");
    }

    #[test]
    fn stats_count_distinct_streams() {
        let mut t = Trace::new("streams");
        t.events = vec![
            ev_alloc(1, 100),
            TraceEvent::Alloc {
                key: 2,
                size: 100,
                tag: AllocTag::Communication,
                stream: StreamId(1),
            },
            TraceEvent::Free {
                key: 2,
                stream: StreamId(1),
            },
            TraceEvent::Free {
                key: 1,
                stream: StreamId::DEFAULT,
            },
        ];
        t.validate().unwrap();
        assert_eq!(t.stats().streams, 2);
    }

    #[test]
    fn validate_rejects_double_alloc() {
        let mut t = Trace::new("bad");
        t.events = vec![ev_alloc(1, 10), ev_alloc(1, 10)];
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_unknown_free() {
        let mut t = Trace::new("bad");
        t.events = vec![TraceEvent::Free {
            key: 9,
            stream: StreamId::DEFAULT,
        }];
        assert!(t.validate().is_err());
    }

    #[test]
    fn validate_rejects_leaks() {
        let mut t = Trace::new("bad");
        t.events = vec![ev_alloc(1, 10)];
        assert!(t.validate().unwrap_err().contains("leaked"));
    }

    #[test]
    fn validate_rejects_nested_iterations() {
        let mut t = Trace::new("bad");
        t.events = vec![
            TraceEvent::IterBegin { index: 0 },
            TraceEvent::IterBegin { index: 1 },
        ];
        assert!(t.validate().is_err());
    }

    #[test]
    fn tag_breakdown_tracks_per_category_peaks() {
        let mut t = Trace::new("tags");
        t.events = vec![
            TraceEvent::Alloc {
                key: 1,
                size: 100,
                tag: AllocTag::Weight,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Alloc {
                key: 2,
                size: 50,
                tag: AllocTag::Activation,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Alloc {
                key: 3,
                size: 70,
                tag: AllocTag::Activation,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Free {
                key: 2,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Alloc {
                key: 4,
                size: 40,
                tag: AllocTag::Activation,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Free {
                key: 3,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Free {
                key: 4,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Free {
                key: 1,
                stream: StreamId::DEFAULT,
            },
        ];
        t.validate().unwrap();
        let b = t.tag_breakdown();
        assert_eq!(b.peak(AllocTag::Weight), 100);
        assert_eq!(b.peak(AllocTag::Activation), 120); // 50 + 70
        assert_eq!(b.peak(AllocTag::Gradient), 0);
        let sorted = b.sorted();
        assert_eq!(sorted[0], (AllocTag::Activation, 120));
        assert_eq!(sorted[1], (AllocTag::Weight, 100));
    }

    #[test]
    fn small_allocs_counted() {
        let mut t = Trace::new("small");
        t.events = vec![
            ev_alloc(1, 4096),
            ev_alloc(2, mib(4)),
            TraceEvent::Free {
                key: 1,
                stream: StreamId::DEFAULT,
            },
            TraceEvent::Free {
                key: 2,
                stream: StreamId::DEFAULT,
            },
        ];
        assert_eq!(t.stats().small_allocs, 1);
    }
}
