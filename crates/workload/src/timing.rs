//! Analytic compute-time model.
//!
//! Produces the `Compute` durations in generated traces so that throughput
//! (samples per simulated second) can be compared across allocators. The
//! model is deliberately simple — FLOP counts over an effective throughput,
//! plus bandwidth terms for communication and offload traffic — because the
//! paper's throughput claims are *relative* (GMLake ≈ PyTorch caching ≫
//! native), and the allocator time is what differs between runs.

use crate::strategy::TrainConfig;

/// Effective per-GPU training throughput (FLOPs/ns). 312 TFLOPs fp16 peak on
/// A100 at a 40% model FLOPs utilization ≈ 125 TFLOPs = 125_000 FLOPs/ns.
const EFFECTIVE_FLOPS_PER_NS: f64 = 125_000.0;
/// NVLink all-gather / reduce-scatter effective bandwidth, bytes/ns.
const COLLECTIVE_BYTES_PER_NS: f64 = 100.0; // 100 GB/s
/// PCIe host-device bandwidth for offload traffic, bytes/ns.
const PCIE_BYTES_PER_NS: f64 = 16.0; // 16 GB/s

/// Per-layer compute durations, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LayerTiming {
    /// Forward pass of one layer.
    pub forward_ns: u64,
    /// Backward pass of one layer (≈ 2× forward), excluding recompute.
    pub backward_ns: u64,
    /// Re-running the forward inside backward (recomputation), 0 if unused.
    pub recompute_ns: u64,
    /// Parameter all-gather for one layer shard (ZeRO-3).
    pub gather_ns: u64,
    /// Gradient reduce-scatter for one layer.
    pub reduce_ns: u64,
}

/// Computes per-layer timings for a configuration.
///
/// Forward FLOPs per layer ≈ `2 · params_layer · tokens`; backward ≈ 2×
/// forward; recomputation re-runs the forward.
pub fn layer_timing(cfg: &TrainConfig) -> LayerTiming {
    let tokens = cfg.tokens_per_iter() as f64;
    let p_layer = cfg.model.params_per_layer() as f64;
    let fwd_flops = 2.0 * p_layer * tokens;
    let forward_ns = (fwd_flops / EFFECTIVE_FLOPS_PER_NS) as u64;
    let backward_ns = 2 * forward_ns;
    let recompute_ns = if cfg.strategies.recompute {
        forward_ns
    } else {
        0
    };
    // Full fp16 layer parameters cross the interconnect for gather and the
    // same volume of gradients for reduce-scatter.
    let layer_bytes = p_layer * cfg.dtype_bytes as f64;
    let gather_ns = (layer_bytes / COLLECTIVE_BYTES_PER_NS) as u64;
    let reduce_ns = gather_ns;
    LayerTiming {
        forward_ns,
        backward_ns,
        recompute_ns,
        gather_ns,
        reduce_ns,
    }
}

/// Time to move `bytes` across PCIe (offload staging).
pub fn pcie_ns(bytes: u64) -> u64 {
    (bytes as f64 / PCIE_BYTES_PER_NS) as u64
}

/// Optimizer-step time on the GPU for `param_shard` parameters (fused Adam,
/// bandwidth-bound: ~16 bytes of state traffic per parameter at ~1 TB/s).
pub fn optimizer_ns(param_shard: u64) -> u64 {
    (param_shard as f64 * 16.0 / 1000.0) as u64
}

/// Ideal compute-only iteration time (no allocator, no offload stalls) —
/// a lower bound used in reports.
pub fn ideal_iteration_ns(cfg: &TrainConfig) -> u64 {
    let t = layer_timing(cfg);
    let l = cfg.model.layers as u64;
    l * (t.forward_ns + t.backward_ns + t.recompute_ns + 2 * t.gather_ns + t.reduce_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use crate::strategy::StrategySet;

    #[test]
    fn backward_is_twice_forward() {
        let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::N);
        let t = layer_timing(&cfg);
        assert_eq!(t.backward_ns, 2 * t.forward_ns);
        assert_eq!(t.recompute_ns, 0);
    }

    #[test]
    fn recompute_adds_a_forward() {
        let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::R);
        let t = layer_timing(&cfg);
        assert_eq!(t.recompute_ns, t.forward_ns);
    }

    #[test]
    fn iteration_time_is_seconds_scale_for_13b() {
        // OPT-13B, batch 8, seq 512: the real thing takes on the order of a
        // second per iteration; the model should be in that ballpark.
        let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::N);
        let ns = ideal_iteration_ns(&cfg);
        let s = ns as f64 / 1e9;
        assert!((0.1..30.0).contains(&s), "iteration = {s} s");
    }

    #[test]
    fn bigger_models_take_longer() {
        let small = ideal_iteration_ns(&TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::N));
        let big = ideal_iteration_ns(&TrainConfig::new(ModelSpec::gpt_neox_20b(), StrategySet::N));
        assert!(big > 5 * small);
    }

    #[test]
    fn pcie_slower_than_nvlink() {
        let bytes = 1 << 30;
        let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::N);
        let t = layer_timing(&cfg);
        // Same bytes over PCIe take longer than a layer gather over NVLink.
        let layer_bytes = cfg.model.params_per_layer() * 2;
        assert!(pcie_ns(layer_bytes) > t.gather_ns);
        assert!(pcie_ns(bytes) > 0);
    }

    #[test]
    fn optimizer_time_scales_with_shard() {
        assert!(optimizer_ns(2_000_000) > optimizer_ns(1_000_000));
    }
}
