//! Transformer model specifications for the models evaluated in the paper
//! (Table 2): OPT-1.3B, GPT-2, GLM-10B, OPT-13B, Vicuna-13B, GPT-NeoX-20B.
//!
//! Only the quantities that determine memory behaviour are modeled: layer
//! count, hidden width, head count, vocabulary, and the derived parameter
//! count (`≈ 12·L·H² + V·H`, the standard decoder-only estimate).

/// Architecture of a decoder-only transformer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModelSpec {
    /// Model name as used in the paper's figures.
    pub name: String,
    /// Number of transformer layers.
    pub layers: u32,
    /// Hidden dimension.
    pub hidden: u32,
    /// Attention heads.
    pub heads: u32,
    /// Vocabulary size.
    pub vocab: u32,
}

impl ModelSpec {
    /// OPT-1.3B: 24 layers, hidden 2048.
    pub fn opt_1_3b() -> Self {
        ModelSpec {
            name: "OPT-1.3B".to_owned(),
            layers: 24,
            hidden: 2048,
            heads: 32,
            vocab: 50272,
        }
    }

    /// GPT-2 (XL configuration): 48 layers, hidden 1600.
    pub fn gpt2() -> Self {
        ModelSpec {
            name: "GPT-2".to_owned(),
            layers: 48,
            hidden: 1600,
            heads: 25,
            vocab: 50257,
        }
    }

    /// GLM-10B: 48 layers, hidden 4096.
    pub fn glm_10b() -> Self {
        ModelSpec {
            name: "GLM-10B".to_owned(),
            layers: 48,
            hidden: 4096,
            heads: 64,
            vocab: 50304,
        }
    }

    /// OPT-13B: 40 layers, hidden 5120.
    pub fn opt_13b() -> Self {
        ModelSpec {
            name: "OPT-13B".to_owned(),
            layers: 40,
            hidden: 5120,
            heads: 40,
            vocab: 50272,
        }
    }

    /// Vicuna-13B (LLaMA-13B architecture): 40 layers, hidden 5120.
    pub fn vicuna_13b() -> Self {
        ModelSpec {
            name: "Vicuna-13B".to_owned(),
            layers: 40,
            hidden: 5120,
            heads: 40,
            vocab: 32000,
        }
    }

    /// GPT-NeoX-20B: 44 layers, hidden 6144.
    pub fn gpt_neox_20b() -> Self {
        ModelSpec {
            name: "GPT-NeoX-20B".to_owned(),
            layers: 44,
            hidden: 6144,
            heads: 64,
            vocab: 50432,
        }
    }

    /// All six models of Table 2.
    pub fn all() -> Vec<ModelSpec> {
        vec![
            ModelSpec::opt_1_3b(),
            ModelSpec::gpt2(),
            ModelSpec::glm_10b(),
            ModelSpec::opt_13b(),
            ModelSpec::vicuna_13b(),
            ModelSpec::gpt_neox_20b(),
        ]
    }

    /// Total parameter count: `12·L·H² + V·H` (attention + MLP + embeddings).
    ///
    /// ```
    /// use gmlake_workload::ModelSpec;
    /// let p = ModelSpec::opt_13b().params();
    /// assert!((12.0e9..14.5e9).contains(&(p as f64)));
    /// ```
    pub fn params(&self) -> u64 {
        let l = self.layers as u64;
        let h = self.hidden as u64;
        let v = self.vocab as u64;
        12 * l * h * h + v * h
    }

    /// Parameters of one transformer layer: `12·H²`.
    pub fn params_per_layer(&self) -> u64 {
        12 * (self.hidden as u64) * (self.hidden as u64)
    }

    /// Embedding (+ unembedding tie) parameters: `V·H`.
    pub fn embedding_params(&self) -> u64 {
        (self.vocab as u64) * (self.hidden as u64)
    }
}

impl std::fmt::Display for ModelSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} ({} layers, hidden {}, ~{:.1}B params)",
            self.name,
            self.layers,
            self.hidden,
            self.params() as f64 / 1e9
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_match_model_names() {
        let close = |spec: ModelSpec, target_b: f64, tol: f64| {
            let p = spec.params() as f64 / 1e9;
            assert!(
                (p - target_b).abs() / target_b < tol,
                "{}: {p:.2}B vs expected {target_b}B",
                spec.name
            );
        };
        close(ModelSpec::opt_1_3b(), 1.3, 0.10);
        close(ModelSpec::gpt2(), 1.5, 0.15);
        close(ModelSpec::glm_10b(), 10.0, 0.10);
        close(ModelSpec::opt_13b(), 13.0, 0.05);
        close(ModelSpec::vicuna_13b(), 13.0, 0.05);
        close(ModelSpec::gpt_neox_20b(), 20.0, 0.05);
    }

    #[test]
    fn per_layer_params_sum_to_total() {
        let m = ModelSpec::opt_13b();
        assert_eq!(
            m.params(),
            m.params_per_layer() * m.layers as u64 + m.embedding_params()
        );
    }

    #[test]
    fn all_returns_six_distinct_models() {
        let all = ModelSpec::all();
        assert_eq!(all.len(), 6);
        let mut names: Vec<&str> = all.iter().map(|m| m.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn display_mentions_scale() {
        let s = ModelSpec::gpt_neox_20b().to_string();
        assert!(s.contains("GPT-NeoX-20B"));
        assert!(s.contains("20."));
    }
}
