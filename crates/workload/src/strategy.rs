//! Memory-efficient training strategies and platforms (§2.3 / Table 2).

use crate::model::ModelSpec;

/// The set of memory-reduction strategies enabled for a run.
///
/// The paper labels combinations `N` (none), `R` (recomputation), `LR`
/// (LoRA + recomputation), `RO` (recomputation + offload) and `LRO`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StrategySet {
    /// LoRA: base weights frozen; only low-rank adapters train.
    pub lora: bool,
    /// Gradient checkpointing: forward activations are dropped and
    /// recomputed in the backward pass.
    pub recompute: bool,
    /// ZeRO-Offload: optimizer state and step execute on the CPU, with
    /// staged transfers.
    pub offload: bool,
}

impl StrategySet {
    /// No strategy (`N`).
    pub const N: StrategySet = StrategySet {
        lora: false,
        recompute: false,
        offload: false,
    };
    /// Recomputation only (`R`).
    pub const R: StrategySet = StrategySet {
        lora: false,
        recompute: true,
        offload: false,
    };
    /// LoRA + recomputation (`LR`).
    pub const LR: StrategySet = StrategySet {
        lora: true,
        recompute: true,
        offload: false,
    };
    /// Recomputation + offload (`RO`).
    pub const RO: StrategySet = StrategySet {
        lora: false,
        recompute: true,
        offload: true,
    };
    /// LoRA + recomputation + offload (`LRO`).
    pub const LRO: StrategySet = StrategySet {
        lora: true,
        recompute: true,
        offload: true,
    };

    /// The five combinations evaluated in Figures 3 and 10.
    pub const FIG10_SWEEP: [StrategySet; 5] = [
        StrategySet::N,
        StrategySet::R,
        StrategySet::LR,
        StrategySet::RO,
        StrategySet::LRO,
    ];

    /// The paper's label for this combination.
    pub fn label(&self) -> &'static str {
        match (self.lora, self.recompute, self.offload) {
            (false, false, false) => "N",
            (false, true, false) => "R",
            (true, true, false) => "LR",
            (false, true, true) => "RO",
            (true, true, true) => "LRO",
            (true, false, false) => "L",
            (false, false, true) => "O",
            (true, false, true) => "LO",
        }
    }

    /// How many distinct strategies are enabled (a rough complexity proxy).
    pub fn complexity(&self) -> u32 {
        self.lora as u32 + self.recompute as u32 + self.offload as u32
    }
}

impl std::fmt::Display for StrategySet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Distributed-training platform flavor (Table 2).
///
/// All three shard parameters/gradients/optimizer state across data-parallel
/// ranks; they differ in gather bucketing and transient buffer behaviour,
/// which the trace generator reflects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Platform {
    /// DeepSpeed ZeRO stage 3.
    DeepSpeedZero3,
    /// PyTorch fully-sharded data parallel.
    Fsdp,
    /// Colossal-AI.
    ColossalAi,
}

impl Platform {
    /// Short name used in figure labels.
    pub fn label(&self) -> &'static str {
        match self {
            Platform::DeepSpeedZero3 => "DS",
            Platform::Fsdp => "FSDP",
            Platform::ColossalAi => "CAI",
        }
    }

    /// Maximum parameter-gather bucket, in bytes. FSDP gathers whole
    /// flattened units (larger buckets); Colossal-AI uses finer chunks.
    pub fn gather_bucket_bytes(&self) -> u64 {
        match self {
            Platform::DeepSpeedZero3 => 500 * 1024 * 1024,
            Platform::Fsdp => 768 * 1024 * 1024,
            Platform::ColossalAi => 256 * 1024 * 1024,
        }
    }
}

impl std::fmt::Display for Platform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Full configuration of a fine-tuning run, for one data-parallel rank.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrainConfig {
    /// Model architecture.
    pub model: ModelSpec,
    /// Enabled memory-reduction strategies.
    pub strategies: StrategySet,
    /// Distributed platform flavor.
    pub platform: Platform,
    /// Number of data-parallel GPUs (ZeRO-3 shard count).
    pub n_gpus: u32,
    /// Per-GPU micro-batch size.
    pub batch_size: u32,
    /// Sequence length.
    pub seq_len: u32,
    /// Bytes per element of weights/activations (2 = fp16).
    pub dtype_bytes: u32,
    /// LoRA rank (when `strategies.lora`).
    pub lora_rank: u32,
    /// Training iterations to generate.
    pub iterations: u32,
    /// RNG seed for the jitter model.
    pub seed: u64,
    /// Logical GPU streams the trace is issued on (default 1). With more
    /// than one stream, communication and offload-staging tensors move to
    /// side streams — the overlap real ZeRO/offload runs rely on — while
    /// compute tensors stay on the default stream. Every tensor is freed on
    /// its allocating stream.
    pub streams: u32,
}

impl TrainConfig {
    /// A representative fine-tuning configuration: DeepSpeed ZeRO-3, 4 GPUs,
    /// batch 8, sequence 2048, fp16, 8 iterations.
    pub fn new(model: ModelSpec, strategies: StrategySet) -> Self {
        TrainConfig {
            model,
            strategies,
            platform: Platform::DeepSpeedZero3,
            n_gpus: 4,
            batch_size: 8,
            seq_len: 2048,
            dtype_bytes: 2,
            lora_rank: 64,
            iterations: 8,
            seed: 0x6d6c616b65, // "mlake"
            streams: 1,
        }
    }

    /// Sets the GPU count.
    #[must_use]
    pub fn with_gpus(mut self, n_gpus: u32) -> Self {
        self.n_gpus = n_gpus;
        self
    }

    /// Sets the per-GPU batch size.
    #[must_use]
    pub fn with_batch(mut self, batch_size: u32) -> Self {
        self.batch_size = batch_size;
        self
    }

    /// Sets the platform.
    #[must_use]
    pub fn with_platform(mut self, platform: Platform) -> Self {
        self.platform = platform;
        self
    }

    /// Sets the iteration count.
    #[must_use]
    pub fn with_iterations(mut self, iterations: u32) -> Self {
        self.iterations = iterations;
        self
    }

    /// Sets the sequence length.
    #[must_use]
    pub fn with_seq_len(mut self, seq_len: u32) -> Self {
        self.seq_len = seq_len;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the logical stream count (see [`TrainConfig::streams`]). Values
    /// below 1 are treated as 1 by the generator.
    #[must_use]
    pub fn with_streams(mut self, streams: u32) -> Self {
        self.streams = streams;
        self
    }

    /// Tokens processed per iteration on this rank.
    pub fn tokens_per_iter(&self) -> u64 {
        self.batch_size as u64 * self.seq_len as u64
    }

    /// Figure-style label, e.g. `DS-OPT-13B/LR/4gpu/bs8`.
    pub fn label(&self) -> String {
        format!(
            "{}-{}/{}/{}gpu/bs{}",
            self.platform.label(),
            self.model.name,
            self.strategies.label(),
            self.n_gpus,
            self.batch_size
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strategy_labels_match_paper() {
        assert_eq!(StrategySet::N.label(), "N");
        assert_eq!(StrategySet::R.label(), "R");
        assert_eq!(StrategySet::LR.label(), "LR");
        assert_eq!(StrategySet::RO.label(), "RO");
        assert_eq!(StrategySet::LRO.label(), "LRO");
    }

    #[test]
    fn complexity_orders_combinations() {
        assert_eq!(StrategySet::N.complexity(), 0);
        assert_eq!(StrategySet::R.complexity(), 1);
        assert_eq!(StrategySet::LR.complexity(), 2);
        assert_eq!(StrategySet::LRO.complexity(), 3);
    }

    #[test]
    fn fig10_sweep_is_the_five_paper_points() {
        let labels: Vec<&str> = StrategySet::FIG10_SWEEP.iter().map(|s| s.label()).collect();
        assert_eq!(labels, vec!["N", "R", "LR", "RO", "LRO"]);
    }

    #[test]
    fn config_builders_chain() {
        let c = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR)
            .with_gpus(8)
            .with_batch(16)
            .with_platform(Platform::Fsdp)
            .with_iterations(3)
            .with_seq_len(1024)
            .with_seed(7);
        assert_eq!(c.n_gpus, 8);
        assert_eq!(c.batch_size, 16);
        assert_eq!(c.platform, Platform::Fsdp);
        assert_eq!(c.iterations, 3);
        assert_eq!(c.tokens_per_iter(), 16 * 1024);
        assert_eq!(c.seed, 7);
        assert!(c.label().contains("FSDP-OPT-13B/LR/8gpu/bs16"));
    }

    #[test]
    fn platform_buckets_differ() {
        assert!(Platform::Fsdp.gather_bucket_bytes() > Platform::ColossalAi.gather_bucket_bytes());
    }
}
