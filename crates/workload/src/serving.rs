//! Serving workloads: tenant churn over a [`ServingService`].
//!
//! Training traces (the rest of this crate) are iteration-periodic streams
//! from one job that owns the device. Serving is the opposite regime —
//! many small jobs multiplex one device, arriving and departing on their
//! own schedules, each pinning a model working set and churning transient
//! request memory (KV caches, attention scratch) on top of it. The plan
//! generator below produces that regime deterministically from a seed:
//! geometric inter-arrivals, heterogeneous footprints drawn from the
//! model corpus ([`ModelSpec::all`]), geometric lifetimes, per-tenant
//! request rates. The replayer drives a [`ServingService`] through the
//! plan, timing every allocation into a latency [`Histogram`] so the
//! tail (p99/p999) under churn can be gated in CI.

use std::collections::HashMap;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gmlake_alloc_api::{mib, AllocError, AllocationId};
use gmlake_serving::{AdmissionVerdict, ServingService, TenantId};
use gmlake_telemetry::{Histogram, HistogramSummary};

use crate::model::ModelSpec;

/// Tuning knobs of the serving plan generator.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingWorkloadConfig {
    /// RNG seed; equal seeds generate equal plans.
    pub seed: u64,
    /// Service steps the plan spans.
    pub steps: u64,
    /// Expected tenant arrivals per step (a geometric burst per step, so
    /// bursts of several arrivals in one step do occur).
    pub arrivals_per_step: f64,
    /// Expected tenant lifetime in steps (geometric, at least 1).
    pub mean_lifetime_steps: u64,
    /// The model footprint (fp16 parameter bytes) is divided by a shard
    /// factor drawn uniformly from this range — modelling tensor-parallel
    /// shards and quantized variants of the corpus models. Inclusive
    /// bounds, both at least 1.
    pub shard_range: (u64, u64),
    /// Allocation requests each live tenant issues per step (uniform in
    /// the inclusive range).
    pub requests_per_step: (u64, u64),
}

impl Default for ServingWorkloadConfig {
    fn default() -> Self {
        ServingWorkloadConfig {
            seed: 0xA5A5,
            steps: 256,
            arrivals_per_step: 2.0,
            mean_lifetime_steps: 64,
            shard_range: (32, 128),
            requests_per_step: (1, 4),
        }
    }
}

/// One planned tenant: when it arrives, what it commits, how it behaves.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannedTenant {
    /// Step the tenant arrives at.
    pub arrive_step: u64,
    /// Steps the tenant stays once admitted (at least 1).
    pub lifetime_steps: u64,
    /// Quota the tenant commits on arrival.
    pub quota_bytes: u64,
    /// Resident working set (model shard weights) pinned on admission,
    /// as allocation sizes.
    pub resident: Vec<u64>,
    /// Transient request allocations issued per step (each freed the
    /// following step — KV-cache churn).
    pub requests_per_step: u64,
    /// Size of one transient request allocation.
    pub request_bytes: u64,
    /// Name of the corpus model the footprint was derived from.
    pub model: String,
}

/// A deterministic, pre-planned serving workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingPlan {
    cfg: ServingWorkloadConfig,
    /// Tenants ordered by `arrive_step`.
    pub tenants: Vec<PlannedTenant>,
}

impl ServingPlan {
    /// Generates the plan for `cfg` (pure function of the config).
    pub fn generate(cfg: ServingWorkloadConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let models = ModelSpec::all();
        let mut tenants = Vec::new();
        let arrive_p = (cfg.arrivals_per_step / (1.0 + cfg.arrivals_per_step)).clamp(0.01, 0.99);
        for step in 0..cfg.steps {
            // Geometric burst: keep flipping while the coin says "another".
            while rng.gen_bool(arrive_p) {
                tenants.push(Self::plan_tenant(&cfg, &mut rng, &models, step));
            }
        }
        ServingPlan { cfg, tenants }
    }

    fn plan_tenant(
        cfg: &ServingWorkloadConfig,
        rng: &mut StdRng,
        models: &[ModelSpec],
        step: u64,
    ) -> PlannedTenant {
        let model = &models[rng.gen_range(0..models.len())];
        let (lo, hi) = cfg.shard_range;
        let shard = rng.gen_range(lo.max(1)..hi.max(lo.max(1)) + 1);
        // fp16 parameters, sharded; layer-block granularity for the
        // resident set so footprints are heterogeneous but structured.
        let footprint = (model.params() * 2 / shard).max(mib(1));
        let block = (footprint / 4).max(mib(1));
        let mut resident = Vec::new();
        let mut left = footprint;
        while left > 0 {
            let take = block.min(left);
            resident.push(take);
            left -= take;
        }
        let (rlo, rhi) = cfg.requests_per_step;
        let requests_per_step = rng.gen_range(rlo..rhi.max(rlo) + 1);
        // Request memory ~ KV-cache slab: a fraction of a resident block.
        let request_bytes = (block / rng.gen_range(4u64..17u64)).max(256 << 10);
        // Quota: working set + request headroom, rounded up to 1 MiB.
        let headroom = request_bytes * (requests_per_step * 2 + 1);
        let quota_bytes = (footprint + headroom).div_ceil(mib(1)) * mib(1);
        let lifetime_steps = 1 + geometric(rng, cfg.mean_lifetime_steps.max(1));
        PlannedTenant {
            arrive_step: step,
            lifetime_steps,
            quota_bytes,
            resident,
            requests_per_step,
            request_bytes,
            model: model.name.clone(),
        }
    }

    /// The config the plan was generated from.
    pub fn config(&self) -> &ServingWorkloadConfig {
        &self.cfg
    }

    /// Steps the plan spans.
    pub fn steps(&self) -> u64 {
        self.cfg.steps
    }

    /// Sum of quota commitments across all planned tenants (an upper
    /// bound on committed bytes if every arrival were admitted and none
    /// departed).
    pub fn total_quota_bytes(&self) -> u64 {
        self.tenants.iter().map(|t| t.quota_bytes).sum()
    }
}

/// Geometric sample with mean `mean` (support `0..`).
fn geometric(rng: &mut StdRng, mean: u64) -> u64 {
    let p = 1.0 / (mean as f64 + 1.0);
    let mut n = 0;
    while !rng.gen_bool(p) && n < mean * 20 {
        n += 1;
    }
    n
}

/// What happened when a [`ServingPlan`] was replayed against a service.
#[derive(Debug)]
pub struct ServingReport {
    /// Wall-clock latency of every allocation attempt (resident and
    /// request), nanoseconds.
    pub alloc_latency: Histogram,
    /// Allocation attempts issued.
    pub attempts: u64,
    /// Attempts refused with [`AllocError::QuotaExceeded`].
    pub quota_rejections: u64,
    /// Attempts that failed with a device-level OOM (should stay 0 when
    /// the rescue ladder works).
    pub oom_failures: u64,
    /// Tenant arrivals offered / admitted (immediately or after shed).
    pub offered: u64,
    /// Arrivals admitted.
    pub admitted: u64,
    /// Planned departures executed.
    pub departed: u64,
    /// Peak simultaneously-live tenants observed by the replayer.
    pub peak_tenants: u64,
    /// Mean per-tenant fragmentation (1 − requested/used) over the
    /// tenants still live at the end of the run.
    pub mean_tenant_fragmentation: f64,
}

impl ServingReport {
    /// Latency summary (count/min/mean/percentiles) of all attempts.
    pub fn latency_summary(&self) -> HistogramSummary {
        self.alloc_latency.summary()
    }
}

/// Replays a [`ServingPlan`] against a [`ServingService`], timing every
/// allocation.
///
/// Per step: offer due arrivals (pinning each admitted tenant's resident
/// working set), free the previous step's transient requests, issue this
/// step's, depart tenants whose lifetime expired, then advance
/// [`ServingService::step`]. Evictions by the rescue stage are tolerated:
/// a tenant whose working set was dropped simply re-pins it on its next
/// request burst.
#[derive(Debug)]
pub struct ServingReplayer {
    plan: ServingPlan,
}

/// Live replay state of one admitted tenant.
#[derive(Debug)]
struct LiveTenant {
    id: TenantId,
    depart_at: u64,
    plan_idx: usize,
    resident: Vec<AllocationId>,
    transient: Vec<AllocationId>,
}

impl ServingReplayer {
    /// Creates a replayer for `plan`.
    pub fn new(plan: ServingPlan) -> Self {
        ServingReplayer { plan }
    }

    /// Runs the plan to completion and reports.
    pub fn run(&self, serving: &ServingService) -> ServingReport {
        let mut report = ServingReport {
            alloc_latency: Histogram::new(),
            attempts: 0,
            quota_rejections: 0,
            oom_failures: 0,
            offered: 0,
            admitted: 0,
            departed: 0,
            peak_tenants: 0,
            mean_tenant_fragmentation: 0.0,
        };
        let mut live: HashMap<u64, LiveTenant> = HashMap::new();
        let mut next_arrival = 0usize;
        for step in 0..self.plan.cfg.steps {
            // Arrivals due this step.
            while next_arrival < self.plan.tenants.len()
                && self.plan.tenants[next_arrival].arrive_step <= step
            {
                let planned = &self.plan.tenants[next_arrival];
                report.offered += 1;
                let verdict = serving.offer(planned.quota_bytes);
                if let Some(id) = verdict.tenant() {
                    report.admitted += 1;
                    live.insert(
                        id.0,
                        LiveTenant {
                            id,
                            depart_at: step + planned.lifetime_steps,
                            plan_idx: next_arrival,
                            resident: Vec::new(),
                            transient: Vec::new(),
                        },
                    );
                }
                let _ = matches!(verdict, AdmissionVerdict::Queued); // queued arrivals are simply lost to this replayer
                next_arrival += 1;
            }
            report.peak_tenants = report.peak_tenants.max(live.len() as u64);

            // Per-tenant work, ascending tenant id for determinism.
            let mut ids: Vec<u64> = live.keys().copied().collect();
            ids.sort_unstable();
            let mut departures = Vec::new();
            for tid in ids {
                let t = live.get_mut(&tid).expect("live");
                let planned = &self.plan.tenants[t.plan_idx];
                // Previous step's transient requests retire first.
                for id in t.transient.drain(..) {
                    let _ = serving.free(t.id, id);
                }
                if step + 1 >= t.depart_at {
                    departures.push(tid);
                    continue;
                }
                // Re-pin the resident set if missing (first step after
                // admission, or after a rescue eviction dropped it).
                if t.resident.is_empty() || serving.usage(t.id).map_or(0, |u| u.used_bytes) == 0 {
                    t.resident.clear();
                    for &size in &planned.resident {
                        match timed_alloc(serving, t.id, size, &mut report) {
                            Some(a) => t.resident.push(a),
                            None => break,
                        }
                    }
                }
                for _ in 0..planned.requests_per_step {
                    if let Some(a) = timed_alloc(serving, t.id, planned.request_bytes, &mut report)
                    {
                        t.transient.push(a);
                    }
                }
            }
            for tid in departures {
                let t = live.remove(&tid).expect("departing");
                serving.depart(t.id);
                report.departed += 1;
            }
            serving.step();
        }
        // Drain the survivors so the pool quiesces.
        let frags: Vec<f64> = serving
            .usages()
            .iter()
            .map(|(_, u)| u.fragmentation())
            .collect();
        if !frags.is_empty() {
            report.mean_tenant_fragmentation = frags.iter().sum::<f64>() / frags.len() as f64;
        }
        for (_, t) in live.drain() {
            serving.depart(t.id);
            report.departed += 1;
        }
        report
    }
}

/// One timed allocation attempt; failures are classified into the report.
fn timed_alloc(
    serving: &ServingService,
    tenant: TenantId,
    bytes: u64,
    report: &mut ServingReport,
) -> Option<AllocationId> {
    report.attempts += 1;
    let t0 = Instant::now();
    let out = serving.alloc(tenant, bytes);
    report.alloc_latency.record(t0.elapsed().as_nanos() as u64);
    match out {
        Ok(a) => Some(a.id),
        Err(AllocError::QuotaExceeded { .. }) => {
            report.quota_rejections += 1;
            None
        }
        Err(AllocError::OutOfMemory { .. }) => {
            report.oom_failures += 1;
            None
        }
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmlake_alloc_api::gib;
    use gmlake_caching::CachingAllocator;
    use gmlake_gpu_sim::{CudaDriver, DeviceConfig};
    use gmlake_runtime::{DeviceId, PoolService};
    use gmlake_serving::{AdmissionPolicy, ServingConfig};

    #[test]
    fn plans_are_deterministic_and_seed_sensitive() {
        let a = ServingPlan::generate(ServingWorkloadConfig::default());
        let b = ServingPlan::generate(ServingWorkloadConfig::default());
        assert_eq!(a, b);
        let c = ServingPlan::generate(ServingWorkloadConfig {
            seed: 7,
            ..ServingWorkloadConfig::default()
        });
        assert_ne!(a, c);
        assert!(a.tenants.len() > 100, "default plan has real churn");
        assert!(a
            .tenants
            .windows(2)
            .all(|w| w[0].arrive_step <= w[1].arrive_step));
    }

    #[test]
    fn planned_footprints_are_heterogeneous_and_quota_covers_them() {
        let plan = ServingPlan::generate(ServingWorkloadConfig::default());
        let mut models = std::collections::HashSet::new();
        for t in &plan.tenants {
            models.insert(t.model.clone());
            let resident: u64 = t.resident.iter().sum();
            let burst = t.request_bytes * t.requests_per_step * 2;
            assert!(
                t.quota_bytes >= resident + burst,
                "quota must cover working set + in-flight requests"
            );
            assert!(t.lifetime_steps >= 1);
        }
        assert!(models.len() >= 4, "footprints drawn across the corpus");
    }

    #[test]
    fn replay_reaches_quiescence_and_times_allocations() {
        let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
        let pool = PoolService::new()
            .register(DeviceId(0), Box::new(CachingAllocator::new(driver)))
            .unwrap();
        let serving = ServingService::new(
            pool,
            ServingConfig::new(gib(2))
                .with_overcommit(4.0)
                .with_policy(AdmissionPolicy::Shed)
                .with_idle_after(4),
        );
        let plan = ServingPlan::generate(ServingWorkloadConfig {
            seed: 11,
            steps: 48,
            arrivals_per_step: 1.0,
            mean_lifetime_steps: 12,
            shard_range: (256, 1024),
            requests_per_step: (1, 2),
        });
        let report = ServingReplayer::new(plan).run(&serving);
        assert!(report.attempts > 0);
        assert_eq!(report.alloc_latency.count(), report.attempts);
        assert!(report.admitted > 0);
        assert_eq!(serving.used_bytes(), 0, "every tenant departed");
        assert_eq!(serving.pool().stats().active_bytes, 0, "pool quiesced");
        assert!(report.latency_summary().p99_ns >= report.latency_summary().p50_ns);
    }
}
