//! Trace generator: turns a [`TrainConfig`] into the tensor-granularity
//! (de)allocation stream one data-parallel rank issues during fine-tuning.
//!
//! The generator models the memory phases of ZeRO-3-style training:
//!
//! * **setup** — persistent parameter/gradient/optimizer shards;
//! * **forward** — per-layer parameter all-gathers (transient), activation
//!   tensors (kept, or dropped to a checkpoint under recomputation),
//!   workspaces;
//! * **backward** — re-gathers, recomputation bursts, activation gradients,
//!   full-layer weight gradients and reduce-scatter buffers (skipped for
//!   frozen weights under LoRA);
//! * **optimizer** — an in-place fused step, or staged PCIe traffic under
//!   ZeRO-Offload.
//!
//! Irregularity — the paper's root cause of fragmentation (Observation 1) —
//! enters exactly where the real systems are nondeterministic: gather-bucket
//! prefetch sizes, recomputation burst shapes, offload staging slices. The
//! amount of jitter grows with the strategy complexity, so `N` traces are
//! almost perfectly periodic (PyTorch reaches ~97% utilization on them, as
//! in Figure 3) while `LRO` traces are the most chaotic.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use gmlake_alloc_api::{AllocTag, StreamId};

use crate::strategy::TrainConfig;
use crate::timing::{layer_timing, optimizer_ns, pcie_ns};
use crate::trace::{Trace, TraceEvent};

/// Generates memory traces for a training configuration.
///
/// ```
/// use gmlake_workload::{ModelSpec, StrategySet, TraceGenerator, TrainConfig};
///
/// let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR).with_iterations(2);
/// let trace = TraceGenerator::new(cfg).generate();
/// trace.validate().expect("well-formed");
/// assert!(trace.stats().allocs > 100);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    cfg: TrainConfig,
}

struct GenState {
    events: Vec<TraceEvent>,
    next_key: u64,
}

impl GenState {
    fn alloc(&mut self, size: u64, tag: AllocTag) -> u64 {
        debug_assert!(size > 0);
        self.next_key += 1;
        let key = self.next_key;
        // Streams are assigned in a post-pass (`assign_streams`), so the
        // phase builders stay stream-agnostic.
        self.events.push(TraceEvent::Alloc {
            key,
            size,
            tag,
            stream: StreamId::DEFAULT,
        });
        key
    }

    fn free(&mut self, key: u64) {
        self.events.push(TraceEvent::Free {
            key,
            stream: StreamId::DEFAULT,
        });
    }

    fn free_all(&mut self, keys: &mut Vec<u64>) {
        for key in keys.drain(..) {
            self.free(key);
        }
    }

    fn compute(&mut self, ns: u64) {
        if ns > 0 {
            self.events.push(TraceEvent::Compute { ns });
        }
    }
}

impl TraceGenerator {
    /// Creates a generator for `cfg`.
    pub fn new(cfg: TrainConfig) -> Self {
        TraceGenerator { cfg }
    }

    /// The configuration being generated.
    pub fn config(&self) -> &TrainConfig {
        &self.cfg
    }

    /// Bytes of one activation unit: `batch · seq · hidden · dtype`.
    fn bshd(&self) -> u64 {
        self.cfg.batch_size as u64
            * self.cfg.seq_len as u64
            * self.cfg.model.hidden as u64
            * self.cfg.dtype_bytes as u64
    }

    /// Jitter applied to workspace tensors; grows with strategy complexity
    /// and vanishes for the fully static `N` configuration.
    fn workspace_jitter(&self) -> f64 {
        let c = self.cfg.strategies.complexity();
        if c == 0 {
            0.0
        } else {
            0.02 + 0.04 * c as f64
        }
    }

    /// Sequence-length factor of one gradient-accumulation microbatch.
    ///
    /// Length-bucketed data loaders (standard for fine-tuning) sort samples
    /// so each accumulation slot sees a characteristic padded length: the
    /// slots *differ from each other* but repeat across iterations. That is
    /// exactly the regime the paper measures — rich *within-iteration* shape
    /// diversity (which fragments the splitting baseline) combined with an
    /// iteration-periodic request stream (which lets GMLake converge to
    /// exact matches, Figure 14). The static `N` configuration pads
    /// everything to the maximum.
    fn mb_factor(&self, mb: u32) -> f64 {
        if self.cfg.strategies.complexity() == 0 {
            return 1.0;
        }
        const SLOTS: [f64; 4] = [1.0, 0.75, 0.875, 0.625];
        SLOTS[(mb as usize) % SLOTS.len()]
    }

    /// Deterministic RNG stream for one generation site. Streams depend on
    /// the seed and the site coordinates but *not* on the iteration index,
    /// so every iteration issues an identical request pattern.
    fn rng_for(&self, purpose: u64, mb: u32, layer: u32) -> StdRng {
        let mut h = self.cfg.seed ^ 0x9e37_79b9_7f4a_7c15;
        for v in [purpose, mb as u64 + 1, layer as u64 + 1] {
            h = (h.rotate_left(23) ^ v).wrapping_mul(0x100_0000_01b3);
        }
        StdRng::seed_from_u64(h)
    }

    /// Generates the full trace (setup, iterations, teardown).
    pub fn generate(&self) -> Trace {
        let cfg = &self.cfg;
        let mut st = GenState {
            events: Vec::new(),
            next_key: 0,
        };
        let mut trace = Trace::new(cfg.label());

        let mut persistent = self.setup(&mut st);
        for iter in 0..cfg.iterations {
            self.iteration(&mut st, iter, &mut persistent);
        }
        // Teardown: persistent tensors die with the process.
        st.free_all(&mut persistent);

        trace.events = st.events;
        Self::assign_streams(&mut trace.events, cfg.streams);
        debug_assert_eq!(trace.validate(), Ok(()));
        trace
    }

    /// Distributes the trace across `streams` logical GPU streams.
    ///
    /// Communication (gather / reduce-scatter) and offload-staging tensors
    /// move to side streams — real ZeRO/offload runs issue them on separate
    /// CUDA streams precisely so they overlap compute — with a deterministic
    /// per-tensor spread over the available side streams. Compute tensors
    /// stay on the default stream.
    ///
    /// Frees follow the tensor's *consumer*: staging buffers live and die
    /// on their copy stream (same-stream frees, the warm path), while a
    /// communication buffer is produced on its side stream but consumed by
    /// the compute kernels — its free is issued from [`StreamId::DEFAULT`],
    /// a **cross-stream free**, exactly the pattern that exercises the
    /// allocator's event-guarded reuse rule (conservative guard without an
    /// event source, pending→ready promotion with one).
    fn assign_streams(events: &mut [TraceEvent], streams: u32) {
        if streams <= 1 {
            return;
        }
        let side = streams as u64 - 1;
        // key -> stream the FREE is issued from (the consumer's stream).
        let mut free_stream: std::collections::HashMap<u64, StreamId> =
            std::collections::HashMap::new();
        for ev in events {
            match ev {
                TraceEvent::Alloc {
                    key, tag, stream, ..
                } => {
                    let (alloc_on, free_on) = match tag {
                        // Produced AND consumed by the copy engine stream.
                        AllocTag::Staging => {
                            let s = StreamId(1 + (*key % side) as u32);
                            (s, s)
                        }
                        // Produced on the comm stream, consumed by compute:
                        // freed from the default stream (cross-stream).
                        AllocTag::Communication => {
                            (StreamId(1 + (*key % side) as u32), StreamId::DEFAULT)
                        }
                        _ => (StreamId::DEFAULT, StreamId::DEFAULT),
                    };
                    *stream = alloc_on;
                    free_stream.insert(*key, free_on);
                }
                TraceEvent::Free { key, stream } => {
                    if let Some(s) = free_stream.get(key) {
                        *stream = *s;
                    }
                }
                _ => {}
            }
        }
    }

    /// Allocates the persistent shards; returns their keys.
    fn setup(&self, st: &mut GenState) -> Vec<u64> {
        let cfg = &self.cfg;
        let n = cfg.n_gpus as u64;
        let d = cfg.dtype_bytes as u64;
        let p_layer = cfg.model.params_per_layer();
        let mut keys = Vec::new();

        // fp16 weight shards, one block per layer, plus the embedding shard.
        for _ in 0..cfg.model.layers {
            keys.push(st.alloc((p_layer * d).div_ceil(n), AllocTag::Weight));
        }
        keys.push(st.alloc(
            (cfg.model.embedding_params() * d).div_ceil(n),
            AllocTag::Weight,
        ));

        if cfg.strategies.lora {
            // Adapters: 4 low-rank matrix pairs per layer (qkv, attn-out,
            // mlp-up, mlp-down), their gradients, and their optimizer state
            // (on GPU unless offloaded). Adapter tensors are tiny, so they
            // are persistent rather than re-sharded.
            let adapter = 4 * 2 * cfg.lora_rank as u64 * cfg.model.hidden as u64 * d;
            for _ in 0..cfg.model.layers {
                keys.push(st.alloc(adapter, AllocTag::Weight));
                keys.push(st.alloc(adapter, AllocTag::Gradient));
                if !cfg.strategies.offload {
                    keys.push(st.alloc(adapter * 6, AllocTag::OptimizerState));
                }
            }
        }
        // Full fine-tuning gradient partitions are NOT allocated here:
        // ZeRO-3 materializes them during each backward pass and releases
        // them after the step. Likewise the fp32 optimizer states initialize
        // lazily at the first step (see `iteration`), landing in a pool the
        // first forward/backward has already churned — one of the real
        // sources of baseline fragmentation.
        keys
    }

    /// Number of gradient-accumulation microbatches per iteration. Dynamic
    /// strategies run accumulation (standard for memory-tight fine-tuning)
    /// over four length-bucketed slots; the static `N` configuration runs a
    /// single maximally-padded batch.
    fn microbatches(&self) -> u32 {
        if self.cfg.strategies.complexity() > 0 {
            4
        } else {
            1
        }
    }

    /// Emits one training iteration.
    fn iteration(&self, st: &mut GenState, iter: u32, persistent: &mut Vec<u64>) {
        let cfg = &self.cfg;
        st.events.push(TraceEvent::IterBegin { index: iter });

        let timing = layer_timing(cfg);
        let d = cfg.dtype_bytes as u64;
        let n = cfg.n_gpus as u64;
        let p_layer = cfg.model.params_per_layer();
        // Per-iteration fp16 gradient partitions (ZeRO-3): materialized on
        // first touch in the backward pass, released after the step.
        let mut grad_shards: Vec<u64> = Vec::new();

        for mb in 0..self.microbatches() {
            // Activation unit for this microbatch (length bucketing).
            let unit = ((self.bshd() as f64 * self.mb_factor(mb)) as u64).max(4096);
            let mut layer_acts: Vec<Vec<u64>> = Vec::with_capacity(cfg.model.layers as usize);
            let mut checkpoints: Vec<u64> = Vec::with_capacity(cfg.model.layers as usize);

            // ---------------- forward ----------------
            // ZeRO-3 prefetches the next layer's parameters while the
            // current layer computes, so two gather buffers overlap.
            let mut pending_gathers: Vec<u64> = Vec::new();
            for layer in 0..cfg.model.layers {
                let gathers = self.gather(st);
                st.compute(timing.gather_ns);
                st.free_all(&mut pending_gathers);

                let mut acts = self.forward_activations(st, &mut self.rng_for(3, mb, layer), unit);
                let checkpoint = st.alloc(unit, AllocTag::Activation);
                let workspace = self.workspace(st, &mut self.rng_for(2, mb, layer), unit);
                st.compute(timing.forward_ns);
                st.free(workspace);
                pending_gathers = gathers;
                if cfg.strategies.recompute {
                    // Drop everything except the checkpoint.
                    st.free_all(&mut acts);
                    layer_acts.push(Vec::new());
                } else {
                    layer_acts.push(acts);
                }
                checkpoints.push(checkpoint);
            }
            st.free_all(&mut pending_gathers);

            // ---------------- LM head / loss ----------------
            // Logits are vocab-wide (far wider than any hidden tensor); the
            // fused cross-entropy processes them in bounded slices with two
            // slices in flight, so full logits never materialize. The
            // gradient slice survives into the start of the backward pass.
            let logits_total = unit * cfg.model.vocab as u64 / cfg.model.hidden as u64;
            let logits_chunk = (logits_total / 4).clamp(4096, 512 << 20);
            let mut in_flight: Vec<u64> = Vec::new();
            let mut remaining = logits_total;
            while remaining > 0 {
                let take = logits_chunk.min(remaining);
                in_flight.push(st.alloc(take, AllocTag::Activation));
                if in_flight.len() == 2 {
                    st.free(in_flight.remove(0));
                }
                remaining = remaining.saturating_sub(take);
            }
            let mut head = in_flight;
            head.push(st.alloc(logits_chunk, AllocTag::Gradient));
            st.compute(timing.forward_ns);

            // ---------------- backward ----------------
            st.free_all(&mut head);
            for layer in (0..cfg.model.layers).rev() {
                let gathers = self.gather(st);
                st.compute(timing.gather_ns);

                let mut burst = Vec::new();
                if cfg.strategies.recompute {
                    burst = self.recompute_burst(st, &mut self.rng_for(5, mb, layer), unit);
                    st.compute(timing.recompute_ns);
                }
                // Activation gradients flowing through the layer.
                let mut grad_acts = vec![
                    st.alloc(unit, AllocTag::Gradient),
                    st.alloc(unit, AllocTag::Gradient),
                ];
                if !cfg.strategies.lora {
                    // DeepSpeed materializes the flat gradient-partition
                    // buffer when the first gradient of the iteration is
                    // produced, and releases it after the step.
                    if grad_shards.is_empty() {
                        grad_shards.push(
                            st.alloc((cfg.model.params() * d).div_ceil(n), AllocTag::Gradient),
                        );
                    }
                    // Full-layer weight gradient, reduce-scattered into the
                    // flat partition.
                    let grad_full = st.alloc(p_layer * d, AllocTag::Gradient);
                    st.compute(timing.backward_ns);
                    let reduce = st.alloc((p_layer * d).div_ceil(n), AllocTag::Communication);
                    st.compute(timing.reduce_ns);
                    st.free(grad_full);
                    st.free(reduce);
                } else {
                    st.compute(timing.backward_ns);
                }
                st.free_all(&mut grad_acts);
                st.free_all(&mut burst);
                let mut acts = std::mem::take(&mut layer_acts[layer as usize]);
                st.free_all(&mut acts);
                st.free(checkpoints[layer as usize]);
                for g in gathers {
                    st.free(g);
                }
            }
        }

        // ---------------- optimizer ----------------
        if iter == 0 && !cfg.strategies.lora && !cfg.strategies.offload {
            // Lazy Adam init: the flat fp32 master-weight + moment buffer
            // appears at the first step, after the pool has already been
            // churned by the first forward/backward.
            persistent.push(st.alloc(
                (cfg.model.params() * 12).div_ceil(n),
                AllocTag::OptimizerState,
            ));
        }
        self.optimizer_phase(st, &mut self.rng_for(6, 0, 0));
        st.free_all(&mut grad_shards);
        st.events.push(TraceEvent::IterEnd { index: iter });
    }

    /// Parameter all-gather for one layer: the full fp16 layer, split into
    /// platform-sized buckets. Every layer of a transformer has identical
    /// parameter volume, so gather buffers repeat exactly; the scheduling
    /// variability of real systems shows up as prefetch *overlap* (handled
    /// at the call sites), not as size jitter.
    fn gather(&self, st: &mut GenState) -> Vec<u64> {
        let cfg = &self.cfg;
        let layer_bytes = cfg.model.params_per_layer() * cfg.dtype_bytes as u64;
        let bucket = cfg.platform.gather_bucket_bytes();
        let mut remaining = layer_bytes;
        let mut keys = Vec::new();
        while remaining > 0 {
            let take = remaining.min(bucket);
            keys.push(st.alloc(take, AllocTag::Communication));
            remaining -= take;
        }
        keys
    }

    /// The forward activation set of one layer (sizes in `bshd` units:
    /// QKV = 3, attention out = 1, MLP up = 4, MLP down = 1), plus LoRA
    /// adapter intermediates when enabled.
    fn forward_activations(&self, st: &mut GenState, rng: &mut StdRng, unit: u64) -> Vec<u64> {
        let mut keys = vec![
            st.alloc(3 * unit, AllocTag::Activation),
            st.alloc(unit, AllocTag::Activation),
            st.alloc(4 * unit, AllocTag::Activation),
            st.alloc(unit, AllocTag::Activation),
        ];
        if self.cfg.strategies.lora {
            let r_unit = self.cfg.batch_size as u64
                * self.cfg.seq_len as u64
                * self.cfg.lora_rank as u64
                * self.cfg.dtype_bytes as u64;
            keys.push(st.alloc(r_unit.max(512), AllocTag::Activation));
            keys.push(st.alloc(r_unit.max(512), AllocTag::Activation));
            keys.push(st.alloc(jitter(rng, unit, 0.05), AllocTag::Activation));
        }
        keys
    }

    /// A transient kernel workspace (attention/cuBLAS scratch).
    fn workspace(&self, st: &mut GenState, rng: &mut StdRng, unit: u64) -> u64 {
        st.alloc(
            jitter(rng, unit, self.workspace_jitter()),
            AllocTag::Workspace,
        )
    }

    /// Recomputation burst: checkpointing re-runs the layer's forward, so
    /// the burst materializes exactly the forward activation shapes (plus a
    /// fresh workspace). This is what lets GMLake's cached sBlocks serve the
    /// burst with exact matches once the pattern has been seen.
    fn recompute_burst(&self, st: &mut GenState, rng: &mut StdRng, unit: u64) -> Vec<u64> {
        let mut keys = self.forward_activations(st, rng, unit);
        keys.push(self.workspace(st, rng, unit));
        keys
    }

    /// Optimizer phase: fused in-place step, or staged PCIe streaming under
    /// ZeRO-Offload (gradient shard down, updated parameter shard up),
    /// double-buffered with irregular slice sizes.
    fn optimizer_phase(&self, st: &mut GenState, rng: &mut StdRng) {
        let cfg = &self.cfg;
        let n = cfg.n_gpus as u64;
        if !cfg.strategies.offload {
            let shard_params = if cfg.strategies.lora {
                4 * 2 * cfg.lora_rank as u64 * cfg.model.hidden as u64 * cfg.model.layers as u64
            } else {
                cfg.model.params().div_ceil(n)
            };
            st.compute(optimizer_ns(shard_params));
            return;
        }
        // Offload: stream (grad shard + param shard) bytes through staging
        // buffers of irregular size, keeping at most two in flight.
        let d = cfg.dtype_bytes as u64;
        let traffic = if cfg.strategies.lora {
            2 * 4 * 2 * cfg.lora_rank as u64 * cfg.model.hidden as u64 * cfg.model.layers as u64 * d
        } else {
            2 * (cfg.model.params() * d).div_ceil(n)
        };
        const SLICES: [u64; 6] = [
            64 << 20,
            96 << 20,
            128 << 20,
            160 << 20,
            192 << 20,
            256 << 20,
        ];
        let mut in_flight: Vec<u64> = Vec::new();
        let mut remaining = traffic;
        while remaining > 0 {
            let slice = SLICES[rng.gen_range(0..SLICES.len())].min(remaining.max(1 << 20));
            let key = st.alloc(slice, AllocTag::Staging);
            st.compute(pcie_ns(slice));
            in_flight.push(key);
            if in_flight.len() == 2 {
                st.free(in_flight.remove(0));
            }
            remaining = remaining.saturating_sub(slice);
        }
        st.free_all(&mut in_flight);
    }
}

/// Multiplies `base` by a uniform factor in `[1−pct, 1+pct]`, keeping the
/// result positive.
fn jitter(rng: &mut StdRng, base: u64, pct: f64) -> u64 {
    if pct <= 0.0 {
        return base.max(1);
    }
    let f = rng.gen_range(1.0 - pct..1.0 + pct);
    ((base as f64 * f) as u64).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::ModelSpec;
    use crate::strategy::StrategySet;
    use gmlake_alloc_api::gib;

    fn quick(strategies: StrategySet) -> Trace {
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), strategies).with_iterations(2);
        TraceGenerator::new(cfg).generate()
    }

    #[test]
    fn traces_are_well_formed_for_all_strategies() {
        for s in StrategySet::FIG10_SWEEP {
            let t = quick(s);
            t.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", s.label()));
            let stats = t.stats();
            assert!(
                stats.allocs > 100,
                "{}: only {} allocs",
                s.label(),
                stats.allocs
            );
            assert_eq!(stats.iterations, 2);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LRO).with_iterations(2);
        let a = TraceGenerator::new(cfg.clone()).generate();
        let b = TraceGenerator::new(cfg).generate();
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn different_seeds_differ_for_dynamic_strategies() {
        let base = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LRO).with_iterations(1);
        let a = TraceGenerator::new(base.clone().with_seed(1)).generate();
        let b = TraceGenerator::new(base.with_seed(2)).generate();
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn n_strategy_is_fully_periodic() {
        // Without dynamic strategies, steady-state iterations issue identical
        // sizes (iteration 0 additionally lazy-initializes optimizer states,
        // so compare iterations 1 and 2).
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::N).with_iterations(3);
        let t = TraceGenerator::new(cfg).generate();
        let sizes_of_iter = |idx: u32| -> Vec<u64> {
            let mut sizes = Vec::new();
            let mut active = false;
            for ev in &t.events {
                match *ev {
                    TraceEvent::IterBegin { index } => active = index == idx,
                    TraceEvent::IterEnd { .. } => active = false,
                    TraceEvent::Alloc { size, .. } if active => sizes.push(size),
                    _ => {}
                }
            }
            sizes
        };
        assert_eq!(sizes_of_iter(1), sizes_of_iter(2));
    }

    #[test]
    fn dynamic_traces_are_iteration_periodic() {
        // Even the most complex strategy mix repeats exactly from one
        // iteration to the next (randomness is a function of the site, not
        // the iteration) — the property GMLake's convergence relies on.
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LRO).with_iterations(3);
        let t = TraceGenerator::new(cfg).generate();
        let sizes_of_iter = |idx: u32| -> Vec<u64> {
            let mut sizes = Vec::new();
            let mut active = false;
            for ev in &t.events {
                match *ev {
                    TraceEvent::IterBegin { index } => active = index == idx,
                    TraceEvent::IterEnd { .. } => active = false,
                    TraceEvent::Alloc { size, .. } if active => sizes.push(size),
                    _ => {}
                }
            }
            sizes
        };
        assert_eq!(sizes_of_iter(1), sizes_of_iter(2));
    }

    #[test]
    fn multi_stream_traces_route_comm_and_staging_off_the_default_stream() {
        // RO enables offload: communication AND staging traffic exist.
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::RO)
            .with_iterations(2)
            .with_streams(3);
        let t = TraceGenerator::new(cfg).generate();
        t.validate().unwrap();
        assert_eq!(t.stats().streams, 3, "default + 2 side streams in use");
        let mut owner: std::collections::HashMap<u64, (AllocTag, StreamId)> =
            std::collections::HashMap::new();
        let mut side_allocs = 0u64;
        let mut cross_stream_frees = 0u64;
        for ev in &t.events {
            match *ev {
                TraceEvent::Alloc {
                    key, tag, stream, ..
                } => {
                    match tag {
                        AllocTag::Communication | AllocTag::Staging => {
                            assert!(!stream.is_default(), "{tag}: overlap traffic is off-stream");
                            side_allocs += 1;
                        }
                        _ => assert!(stream.is_default(), "{tag}: compute stays on stream 0"),
                    }
                    owner.insert(key, (tag, stream));
                }
                TraceEvent::Free { key, stream } => {
                    let (tag, alloc_stream) = owner[&key];
                    match tag {
                        // Comm buffers are consumed by compute: freed from
                        // the default stream, i.e. cross-stream.
                        AllocTag::Communication => {
                            assert!(stream.is_default(), "{tag}: freed by its consumer");
                            assert_ne!(stream, alloc_stream);
                            cross_stream_frees += 1;
                        }
                        _ => assert_eq!(alloc_stream, stream, "{tag}: freed on its own stream"),
                    }
                }
                _ => {}
            }
        }
        assert!(side_allocs > 0);
        assert!(
            cross_stream_frees > 0,
            "offload workloads must exercise the cross-stream free path"
        );
    }

    #[test]
    fn single_stream_config_keeps_everything_on_the_default_stream() {
        let t = quick(StrategySet::LRO);
        assert_eq!(t.stats().streams, 1);
    }

    #[test]
    fn microbatch_slots_use_different_lengths() {
        // Within one iteration the accumulation slots pad to different
        // lengths: the intra-iteration shape diversity that fragments the
        // splitting baseline.
        let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR).with_iterations(1);
        let g = TraceGenerator::new(cfg);
        assert!(g.microbatches() >= 2);
        assert_ne!(g.mb_factor(0), g.mb_factor(1));
    }

    #[test]
    fn recompute_shrinks_peak_live_memory() {
        // Persistent shards (weights/grads/optimizer) are a floor both share;
        // recompute removes most of the activation volume above it.
        let n = quick(StrategySet::N).stats().peak_live_bytes;
        let r = quick(StrategySet::R).stats().peak_live_bytes;
        assert!(
            r < (n as f64 * 0.75) as u64,
            "recompute should cut activations: N={n} R={r}"
        );
    }

    #[test]
    fn lora_shrinks_persistent_memory() {
        let r = quick(StrategySet::R).stats().peak_live_bytes;
        let lr = quick(StrategySet::LR).stats().peak_live_bytes;
        assert!(lr < r, "LoRA drops grads+optimizer: R={r} LR={lr}");
    }

    #[test]
    fn offload_moves_optimizer_off_gpu() {
        let r = quick(StrategySet::R).stats().peak_live_bytes;
        let ro = quick(StrategySet::RO).stats().peak_live_bytes;
        assert!(ro < r, "offload drops fp32 states: R={r} RO={ro}");
    }

    #[test]
    fn complex_strategies_issue_more_and_smaller_allocations() {
        // The paper's Figure 5: PyTorch-only 46k allocs @ 93 MB mean vs
        // +LR 76k allocs @ 85 MB mean. Shape check: count up, mean down.
        let n = quick(StrategySet::N).stats();
        let lro = quick(StrategySet::LRO).stats();
        assert!(lro.allocs > n.allocs, "N={} LRO={}", n.allocs, lro.allocs);
        assert!(
            lro.mean_alloc < n.mean_alloc,
            "mean N={} LRO={}",
            n.mean_alloc,
            lro.mean_alloc
        );
    }

    #[test]
    fn gpu_scaling_shrinks_shards() {
        let one = TraceGenerator::new(
            TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR)
                .with_iterations(1)
                .with_gpus(1),
        )
        .generate()
        .stats();
        let sixteen = TraceGenerator::new(
            TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR)
                .with_iterations(1)
                .with_gpus(16),
        )
        .generate()
        .stats();
        assert!(sixteen.peak_live_bytes < one.peak_live_bytes);
    }

    #[test]
    fn peak_live_fits_a100_for_default_13b_lr() {
        let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR).with_iterations(1);
        let t = TraceGenerator::new(cfg).generate();
        assert!(t.stats().peak_live_bytes < gib(80));
    }

    #[test]
    fn compute_time_present_and_scales_with_model() {
        let small = quick(StrategySet::N).stats().compute_ns;
        let big = TraceGenerator::new(
            TrainConfig::new(ModelSpec::opt_13b(), StrategySet::N).with_iterations(2),
        )
        .generate()
        .stats()
        .compute_ns;
        assert!(small > 0);
        assert!(big > small);
    }
}
