//! The evaluation matrix: Table 2's model/platform/strategy rows and the
//! 76-workload suite behind the paper's headline numbers (avg 9.2 GB saved,
//! avg 15% fragmentation reduction "obtained from 76 workloads within 8
//! different models").

use crate::model::ModelSpec;
use crate::strategy::{Platform, StrategySet, TrainConfig};

/// One row of Table 2: a model, its platform, and the strategy combinations
/// it is evaluated with.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// The model.
    pub model: ModelSpec,
    /// The distributed-training platform used for it.
    pub platform: Platform,
    /// Strategy combinations exercised for this model.
    pub strategies: Vec<StrategySet>,
}

/// Table 2 of the paper. GPT-NeoX-20B's full-finetune combinations are
/// excluded at 4×80 GB (its fp32 optimizer shard alone exceeds a device),
/// matching the paper's use of LoRA/offload for the largest models.
pub fn table2() -> Vec<Table2Row> {
    use StrategySet as S;
    vec![
        Table2Row {
            model: ModelSpec::opt_1_3b(),
            platform: Platform::DeepSpeedZero3,
            strategies: vec![S::N, S::R, S::LR, S::RO, S::LRO],
        },
        Table2Row {
            model: ModelSpec::gpt2(),
            platform: Platform::ColossalAi,
            strategies: vec![S::N, S::R, S::RO],
        },
        Table2Row {
            model: ModelSpec::glm_10b(),
            platform: Platform::Fsdp,
            strategies: vec![S::N, S::R, S::RO],
        },
        Table2Row {
            model: ModelSpec::opt_13b(),
            platform: Platform::DeepSpeedZero3,
            strategies: vec![S::N, S::R, S::LR, S::RO, S::LRO],
        },
        Table2Row {
            model: ModelSpec::vicuna_13b(),
            platform: Platform::DeepSpeedZero3,
            strategies: vec![S::N, S::R, S::LR, S::RO, S::LRO],
        },
        Table2Row {
            model: ModelSpec::gpt_neox_20b(),
            platform: Platform::DeepSpeedZero3,
            strategies: vec![S::LR, S::RO, S::LRO],
        },
    ]
}

/// The 76-workload headline suite: Table 2 rows crossed with per-model,
/// per-strategy batch sizes (as in practice, memory-light strategies run at
/// larger batches), plus GPU-scale-out points.
pub fn headline_suite() -> Vec<TrainConfig> {
    use StrategySet as S;
    let mut out = Vec::new();
    // Largest batches that fit 80 GB for each (model, strategy): full
    // fine-tuning (N/R) carries fp32 optimizer + gradient state and runs at
    // small batch; LoRA/offload free that memory for larger batches.
    let batches_for = |m: &ModelSpec, s: &S| -> Vec<u32> {
        match (m.name.as_str(), s.label()) {
            ("OPT-1.3B", "N") => vec![4, 8, 16],
            ("OPT-1.3B", "R") => vec![8, 16, 32],
            ("OPT-1.3B", _) => vec![16, 32, 64],
            ("GPT-2", "N") => vec![4, 8, 16],
            ("GPT-2", _) => vec![16, 32, 64],
            ("GLM-10B", "N") => vec![2, 4],
            ("GLM-10B", "R") => vec![4, 8],
            ("GLM-10B", _) => vec![4, 8, 16],
            ("OPT-13B", "N") | ("OPT-13B", "R") => vec![2, 4],
            ("OPT-13B", _) => vec![8, 16, 24],
            ("Vicuna-13B", "N") => vec![2],
            ("Vicuna-13B", "R") => vec![2, 4],
            ("Vicuna-13B", _) => vec![8, 16],
            // GPT-NeoX-20B (LoRA/offload combinations only; its full
            // fine-tuning state exceeds 4x80 GB).
            (_, "RO") => vec![4, 8],
            _ => vec![8, 16, 24],
        }
    };
    for row in table2() {
        for s in &row.strategies {
            for bs in batches_for(&row.model, s) {
                out.push(
                    TrainConfig::new(row.model.clone(), *s)
                        .with_platform(row.platform)
                        .with_batch(bs),
                );
            }
        }
    }
    // Scale-out extras (GPU counts beyond the default 4).
    for gpus in [1, 2, 8, 16] {
        out.push(
            TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR)
                .with_batch(8)
                .with_gpus(gpus),
        );
    }
    for gpus in [2, 8] {
        out.push(
            TrainConfig::new(ModelSpec::gpt_neox_20b(), StrategySet::LR)
                .with_batch(8)
                .with_gpus(gpus),
        );
    }
    for gpus in [1, 2, 8] {
        out.push(
            TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LRO)
                .with_batch(32)
                .with_gpus(gpus),
        );
    }
    for gpus in [2, 8] {
        out.push(
            TrainConfig::new(ModelSpec::vicuna_13b(), StrategySet::LR)
                .with_batch(8)
                .with_gpus(gpus),
        );
    }
    for gpus in [2, 8] {
        out.push(
            TrainConfig::new(ModelSpec::opt_13b(), StrategySet::RO)
                .with_batch(8)
                .with_gpus(gpus),
        );
    }
    out.push(
        TrainConfig::new(ModelSpec::gpt2(), StrategySet::R)
            .with_platform(Platform::ColossalAi)
            .with_batch(96),
    );
    out.push(
        TrainConfig::new(ModelSpec::glm_10b(), StrategySet::RO)
            .with_platform(Platform::Fsdp)
            .with_batch(32),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_six_models() {
        let rows = table2();
        assert_eq!(rows.len(), 6);
        // Platforms match Table 2.
        assert_eq!(rows[1].platform, Platform::ColossalAi); // GPT-2
        assert_eq!(rows[2].platform, Platform::Fsdp); // GLM-10B
    }

    #[test]
    fn headline_suite_is_76_workloads() {
        let suite = headline_suite();
        assert_eq!(suite.len(), 76, "paper: 76 workloads");
    }

    #[test]
    fn suite_entries_are_distinct() {
        let suite = headline_suite();
        let mut labels: Vec<String> = suite.iter().map(|c| c.label()).collect();
        labels.sort();
        let before = labels.len();
        labels.dedup();
        assert_eq!(labels.len(), before, "duplicate workload labels");
    }

    #[test]
    fn suite_traces_are_generatable() {
        // Spot-check one workload per model for well-formedness.
        let mut seen = std::collections::HashSet::new();
        for cfg in headline_suite() {
            if seen.insert(cfg.model.name.clone()) {
                let trace = crate::generator::TraceGenerator::new(cfg.clone().with_iterations(1))
                    .generate();
                trace
                    .validate()
                    .unwrap_or_else(|e| panic!("{}: {e}", cfg.label()));
            }
        }
        assert_eq!(seen.len(), 6);
    }
}
