//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal API-compatible subset of `rand`: the [`Rng`] / [`SeedableRng`] /
//! [`RngCore`] traits and a [`rngs::StdRng`] built on splitmix64. The
//! statistical quality is far below the real `StdRng` (ChaCha12) but is more
//! than adequate for the workload jitter model, which only needs cheap,
//! *deterministic* per-site streams.
//!
//! Note the generated sequences differ from the real `rand`'s: anything
//! seeded here is self-consistent and reproducible, but not bit-identical to
//! what upstream `StdRng` would produce.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut a = StdRng::seed_from_u64(42);
//! let mut b = StdRng::seed_from_u64(42);
//! let x: u64 = a.gen_range(10..20);
//! assert!((10..20).contains(&x));
//! assert_eq!(x, b.gen_range(10..20), "same seed, same stream");
//! ```

use std::ops::Range;

/// Low-level uniform bit source.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be deterministically constructed from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Creates an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open, must be non-empty).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// Ranges that can produce a uniform sample given an RNG.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the spans this workspace
                // uses (all far below 2^32).
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to a uniform `f64` in `[0, 1)` using the top 53 bits.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Provided RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // splitmix64 (Steele, Lea, Flood 2014): passes BigCrush when
            // used as a stream, one add + three xor-shift-multiplies.
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(0..6);
            assert!(x < 6);
            let y: u64 = rng.gen_range(100..101);
            assert_eq!(y, 100);
        }
    }

    #[test]
    fn float_range_stays_in_bounds_and_varies() {
        let mut rng = StdRng::seed_from_u64(2);
        let samples: Vec<f64> = (0..1000).map(|_| rng.gen_range(0.95..1.05)).collect();
        assert!(samples.iter().all(|&f| (0.95..1.05).contains(&f)));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 1.0).abs() < 0.01, "mean {mean} far from center");
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
