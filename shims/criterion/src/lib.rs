//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a small wall-clock benchmark harness with the subset of the `criterion`
//! API that the `benches/` targets use: [`Criterion::bench_function`],
//! [`Criterion::benchmark_group`], [`Bencher::iter`],
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: a warm-up call, a one-call estimate
//! to size the run, then ONE timed block of iterations (so the clock is
//! read twice per benchmark, not twice per iteration — per-call timing
//! would swamp nanosecond-scale routines with `Instant::now` overhead).
//! There is no statistical analysis, outlier rejection, or HTML report —
//! numbers are printed to stdout. Good enough to catch order-of-magnitude
//! regressions and to keep `cargo bench` working offline.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost. The shim runs one setup per
/// measured call regardless of the variant, so this only documents intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap to construct relative to the routine.
    SmallInput,
    /// Inputs are expensive to construct.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    /// Target measurement budget per benchmark.
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(400),
            // Effectively "as many as the time budget allows"; groups
            // running expensive routines lower it via `sample_size`.
            sample_size: 10_000_000,
        }
    }
}

impl Criterion {
    /// Mirrors criterion's CLI hook; the shim accepts and ignores all args.
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Sets the per-benchmark measurement budget.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            budget: self.measurement_time,
            max_samples: self.sample_size,
            report: None,
        };
        f(&mut b);
        match b.report {
            Some((iters, total)) => {
                let per_iter = total.as_nanos() as f64 / iters.max(1) as f64;
                println!(
                    "bench {name:<44} {:>12.1} ns/iter ({iters} iters)",
                    per_iter
                );
            }
            None => println!("bench {name:<44} (no measurement)"),
        }
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group {name}");
        let outer_sample_size = self.sample_size;
        BenchmarkGroup {
            criterion: self,
            outer_sample_size,
        }
    }
}

/// A named collection of related benchmarks. A group-level
/// [`BenchmarkGroup::sample_size`] is scoped to the group (as in real
/// criterion): the previous value is restored when the group ends.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    outer_sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Caps the number of measured samples for this group only.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.criterion.bench_function(&format!("  {name}"), f);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

impl Drop for BenchmarkGroup<'_> {
    fn drop(&mut self) {
        self.criterion.sample_size = self.outer_sample_size;
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    budget: Duration,
    max_samples: usize,
    report: Option<(u64, Duration)>,
}

impl Bencher {
    /// Times `routine` over a single block of iterations sized to the time
    /// budget (estimated from one timed call), capped at the sample limit.
    /// The clock is read once before and once after the block, so per-call
    /// timer overhead does not pollute nanosecond-scale measurements.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        std::hint::black_box(routine());
        // One-call estimate to size the measured block.
        let t = Instant::now();
        std::hint::black_box(routine());
        let est_nanos = t.elapsed().as_nanos().max(1);
        let by_budget = (self.budget.as_nanos() / est_nanos).clamp(1, u64::MAX as u128) as u64;
        let iters = by_budget.min(self.max_samples as u64);
        let start = Instant::now();
        for _ in 0..iters {
            std::hint::black_box(routine());
        }
        self.merge(iters, start.elapsed());
    }

    /// Times `routine` over fresh inputs produced by `setup`; only the
    /// routine is timed. Unlike [`Bencher::iter`], the clock brackets each
    /// call (setup must stay untimed), so sub-microsecond routines carry
    /// timer overhead here — use `iter` for those.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        std::hint::black_box(routine(setup()));
        let mut iters = 0u64;
        let mut total = Duration::ZERO;
        let deadline = Instant::now() + self.budget;
        while iters < self.max_samples as u64 && Instant::now() < deadline {
            let input = setup();
            let t = Instant::now();
            std::hint::black_box(routine(input));
            total += t.elapsed();
            iters += 1;
        }
        self.merge(iters, total);
    }

    fn merge(&mut self, iters: u64, total: Duration) {
        match &mut self.report {
            Some((i, t)) => {
                *i += iters;
                *t += total;
            }
            None => self.report = Some((iters, total)),
        }
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo test` runs bench targets with `--test`; there is
            // nothing to test in a shim bench, so exit fast and green.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_reports() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
    }

    #[test]
    fn iter_batched_times_only_routine() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![0u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
    }

    #[test]
    fn groups_run_and_finish() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.sample_size(10);
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    #[test]
    fn group_sample_size_does_not_leak_past_finish() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let before = c.sample_size;
        let mut g = c.benchmark_group("g");
        g.sample_size(7);
        g.bench_function("inner", |b| b.iter(|| 1 + 1));
        g.finish();
        assert_eq!(c.sample_size, before, "group setting is group-scoped");
    }
}
