//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal API-compatible subset of `parking_lot` backed by `std::sync`
//! primitives. The differences that matter to callers are preserved:
//!
//! * [`Mutex::lock`] and [`RwLock::read`]/[`RwLock::write`] return guards
//!   directly (no `Result`) — a poisoned lock is recovered instead of
//!   propagating the panic as an error;
//! * `Mutex::new` is `const`, so statics work.
//!
//! Only the surface used by this workspace is provided. If the real
//! `parking_lot` ever becomes available, deleting this shim and pointing the
//! workspace dependency at crates.io is a drop-in change.
//!
//! ```
//! let m = parking_lot::Mutex::new(5);
//! *m.lock() += 1;
//! assert_eq!(*m.lock(), 6);
//! ```

use std::fmt;
use std::sync::TryLockError;

/// A mutual-exclusion lock whose `lock` never returns a poison error.
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// Guard returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available. Unlike
    /// `std::sync::Mutex`, a poisoned lock is silently recovered: the
    /// protected data is handed out as-is.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        recover(self.0.lock())
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        recover(self.0.get_mut())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T> From<T> for Mutex<T> {
    fn from(value: T) -> Self {
        Mutex::new(value)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// A reader-writer lock whose acquire methods never return poison errors.
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

/// Guard returned by [`RwLock::read`].
pub type RwLockReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;
/// Guard returned by [`RwLock::write`].
pub type RwLockWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock protecting `value`.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        recover(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, recovering from poisoning.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        recover(self.0.read())
    }

    /// Acquires an exclusive write guard, recovering from poisoning.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        recover(self.0.write())
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(TryLockError::Poisoned(p)) => {
                f.debug_tuple("RwLock").field(&&*p.into_inner()).finish()
            }
            Err(TryLockError::WouldBlock) => f.write_str("RwLock { <locked> }"),
        }
    }
}

fn recover<G>(result: Result<G, std::sync::PoisonError<G>>) -> G {
    result.unwrap_or_else(std::sync::PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() = 2;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn mutex_survives_panicking_holder() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        // A poisoned std mutex would error here; the shim recovers.
        assert_eq!(*m.lock(), 7);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn debug_formats() {
        let m = Mutex::new(3);
        assert!(format!("{m:?}").contains('3'));
        let g = m.lock();
        assert!(format!("{m:?}").contains("locked"));
        drop(g);
    }
}
