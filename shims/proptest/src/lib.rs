//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal property-testing harness with the subset of the `proptest` API
//! that `tests/property_allocators.rs` uses: the [`strategy::Strategy`] trait with
//! `prop_map`, [`strategy::Just`], [`arbitrary::any`], weighted
//! [`prop_oneof!`], [`collection::vec`], [`ProptestConfig`], and the
//! [`proptest!`] / `prop_assert*` macros.
//!
//! Differences from the real crate, by design:
//!
//! * **no shrinking** — a failing case reports its case index and the seed
//!   that reproduces it, but is not minimized;
//! * **fixed deterministic seeding** — each `proptest!` test derives its
//!   base seed from the test's name, so runs are reproducible without a
//!   persistence file.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(16))]
//!     // Inside a test module this would also carry `#[test]`.
//!     fn doubling_is_even(x in 0u64..1000) {
//!         prop_assert_eq!((x * 2) % 2, 0);
//!     }
//! }
//! # doubling_is_even();
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

pub use rand::Rng as TestRngExt;

/// The RNG threaded through strategies during a run.
pub type TestRng = StdRng;

/// Runner configuration (only the case count is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// A config running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Drives one property: `cases` iterations of generate + run.
///
/// Not called directly by user code — the [`proptest!`] macro expands to
/// this. Panics (test failure) are annotated with the case index and seed by
/// the panicking assertion itself; the harness adds the case loop.
pub fn run_property<V>(
    test_name: &str,
    config: &ProptestConfig,
    strategy: &dyn strategy::Strategy<Value = V>,
    mut run: impl FnMut(V),
) {
    let base = seed_for(test_name);
    for case in 0..config.cases {
        let mut rng = TestRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9e37_79b9));
        let value = strategy.generate(&mut rng);
        run(value);
    }
}

/// Stable per-test seed derived from the test name.
fn seed_for(name: &str) -> u64 {
    // FNV-1a, good enough to decorrelate sibling tests.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
    }
    h
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// Generates random values of an associated type. Object safe; the
    /// combinators require `Self: Sized`.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Boxes a strategy for storage in heterogeneous collections
    /// (used by `prop_oneof!`).
    pub fn boxed<S>(s: S) -> Box<dyn Strategy<Value = S::Value>>
    where
        S: Strategy + 'static,
    {
        Box::new(s)
    }

    impl<V> Strategy for Box<dyn Strategy<Value = V>> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    /// Weighted union of boxed strategies (built by `prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Builds a union; weights must sum to a positive value.
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = V>>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;

        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.gen_range(0..self.total);
            for (w, s) in &self.arms {
                if pick < *w as u64 {
                    return s.generate(rng);
                }
                pick -= *w as u64;
            }
            unreachable!("weights cover the sampled interval")
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` for a few primitive types.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::RngCore;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arb_int!(u8, u16, u32, u64, usize, i32, i64);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(std::marker::PhantomData)
    }

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(std::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;
    use std::ops::Range;

    /// A strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` module path used inside `proptest!` bodies
    /// (`prop::collection::vec(...)`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Defines property tests: each function runs `cases` times with values
/// drawn from its strategies.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(
                    stringify!($name),
                    &config,
                    &($crate::strategy::Strategy::prop_map(
                        ($($strat,)+),
                        |v| v,
                    )),
                    |($($pat,)+)| $body,
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Tuple-of-strategies support so `proptest!` can pass several bindings as
/// one strategy. (Only the arities the workspace needs.)
mod tuples {
    use super::strategy::Strategy;
    use super::TestRng;

    impl<A: Strategy> Strategy for (A,) {
        type Value = (A::Value,);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng),)
        }
    }

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }
}

/// Weighted choice between strategies: `prop_oneof![3 => a, 1 => b]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// Asserts a condition inside a property (plain `assert!` here: no
/// shrinking machinery to report through).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Op {
        Add(u64),
        Drop(usize),
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![
            3 => (0u64..100).prop_map(Op::Add),
            1 => any::<usize>().prop_map(Op::Drop),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_lengths_respect_range(v in collection::vec(0u64..10, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 10));
        }

        #[test]
        fn oneof_mixes_arms(ops in prop::collection::vec(op(), 40..60)) {
            let adds = ops.iter().filter(|o| matches!(o, Op::Add(_))).count();
            // 3:1 weighting: adds dominate with overwhelming probability.
            prop_assert!(adds > ops.len() / 4, "adds {adds} of {}", ops.len());
        }
    }

    #[test]
    fn determinism_across_runs() {
        let strat = collection::vec(0u64..1000, 3..10);
        let mut first = Vec::new();
        crate::run_property("determinism", &ProptestConfig::with_cases(5), &strat, |v| {
            first.push(v);
        });
        let mut second = Vec::new();
        crate::run_property("determinism", &ProptestConfig::with_cases(5), &strat, |v| {
            second.push(v);
        });
        assert_eq!(first, second);
    }
}
