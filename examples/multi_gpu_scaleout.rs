//! Multi-GPU scale-out on the runtime layer: every data-parallel rank owns
//! a simulated device registered in one `PoolService`, and all ranks replay
//! *concurrently* — one OS thread per rank driving a `PoolHandle` backed by
//! the sharded `DeviceAllocator` front-end — while fragmentation grows with
//! the shard count (the paper's Observation 2 / Figure 11).
//!
//! A second baseline fleet runs under a periodic `DefragScheduler`,
//! showing the runtime's proactive compaction returning idle caches that a
//! plain fleet keeps reserved.
//!
//! Run with: `cargo run --release --example multi_gpu_scaleout`

use gmlake::prelude::*;
use gmlake_bench::{run_scaleout, Allocator};
use gmlake_runtime::DefragScheduler;
use gmlake_workload::to_gib;

fn main() {
    println!("GPU scale-out, OPT-13B with LoRA + recomputation, batch 16/GPU");
    println!("(ranks replay concurrently through gmlake-runtime)\n");
    println!(
        "{:<6} {:>12} {:>10} {:>12} {:>10} {:>14}",
        "gpus", "RM-pt (GiB)", "UR-pt", "RM-gml(GiB)", "UR-gml", "defrag (GiB)"
    );
    for gpus in [1u32, 2, 4, 8, 16] {
        let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR)
            .with_batch(16)
            .with_gpus(gpus);
        let ranks = gpus.min(4);

        // Same seed on every rank: ZeRO data-parallel ranks mirror.
        let baseline = run_scaleout(&cfg, ranks, Allocator::Caching, None);
        let defragged = run_scaleout(
            &cfg,
            ranks,
            Allocator::Caching,
            Some(DefragScheduler::periodic(2)),
        );
        let gml = run_scaleout(&cfg, ranks, Allocator::GmLake, None);

        // All ranks replay the same trace on identical devices; their
        // reports must agree exactly — a determinism check that now also
        // covers the concurrent pool path.
        for fleet in [&baseline, &gml] {
            assert!(
                fleet.ranks.windows(2).all(|w| {
                    w[0].report.peak_reserved == w[1].report.peak_reserved
                        && w[0].report.peak_active == w[1].report.peak_active
                }),
                "ranks diverged — determinism broken"
            );
        }
        let reclaimed = baseline
            .total_final_reserved()
            .saturating_sub(defragged.total_final_reserved());
        println!(
            "{gpus:<6} {:>12.1} {:>9.1}% {:>12.1} {:>9.1}% {:>14.1}",
            to_gib(baseline.max_peak_reserved()),
            baseline.mean_utilization() * 100.0,
            to_gib(gml.max_peak_reserved()),
            gml.mean_utilization() * 100.0,
            to_gib(reclaimed),
        );
    }
    println!("\nutilization of the splitting baseline degrades as shards shrink;");
    println!("GMLake holds ~99% at every scale. The defrag column is idle cache");
    println!("the periodic scheduler returned that the plain fleet kept reserved.");
}
