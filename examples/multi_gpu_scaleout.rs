//! Multi-GPU scale-out: replay each data-parallel rank on its own simulated
//! device, in parallel threads, and watch fragmentation grow with the shard
//! count (the paper's Observation 2 / Figure 11).
//!
//! Run with: `cargo run --release --example multi_gpu_scaleout`

use std::sync::Mutex;

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;
use gmlake_workload::{to_gib, TraceGenerator};

fn main() {
    println!("GPU scale-out, OPT-13B with LoRA + recomputation, batch 16/GPU\n");
    println!(
        "{:<6} {:>12} {:>10} {:>12} {:>10}",
        "gpus", "RM-pt (GiB)", "UR-pt", "RM-gml(GiB)", "UR-gml"
    );
    for gpus in [1u32, 2, 4, 8, 16] {
        let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR)
            .with_batch(16)
            .with_gpus(gpus);
        // Every rank runs the same (statistically identical) trace on its
        // own device; replay all ranks concurrently and aggregate. With
        // identical per-rank traces the ranks agree exactly, which doubles
        // as a determinism check.
        let results: Mutex<Vec<(u64, f64, u64, f64)>> = Mutex::new(Vec::new());
        crossbeam::scope(|scope| {
            for rank in 0..gpus.min(4) {
                let cfg = cfg.clone().with_seed(cfg.seed); // same seed: ZeRO ranks mirror
                let results = &results;
                scope.spawn(move |_| {
                    let trace = TraceGenerator::new(cfg.clone()).generate();
                    let d1 = CudaDriver::new(DeviceConfig::a100_80g());
                    let mut pt = CachingAllocator::new(d1.clone());
                    let r_pt = Replayer::new(d1).replay(&mut pt, &trace, &cfg);
                    let d2 = CudaDriver::new(DeviceConfig::a100_80g());
                    let mut gml = GmLakeAllocator::new(d2.clone(), GmLakeConfig::default());
                    let r_gml = Replayer::new(d2).replay(&mut gml, &trace, &cfg);
                    let _ = rank;
                    results.lock().unwrap().push((
                        r_pt.peak_reserved,
                        r_pt.utilization(),
                        r_gml.peak_reserved,
                        r_gml.utilization(),
                    ));
                });
            }
        })
        .expect("rank threads run to completion");

        let results = results.into_inner().unwrap();
        // All ranks are identical; spot-check before reporting rank 0.
        assert!(
            results.windows(2).all(|w| w[0] == w[1]),
            "ranks diverged — determinism broken"
        );
        let (rm_pt, ur_pt, rm_gml, ur_gml) = results[0];
        println!(
            "{gpus:<6} {:>12.1} {:>9.1}% {:>12.1} {:>9.1}%",
            to_gib(rm_pt),
            ur_pt * 100.0,
            to_gib(rm_gml),
            ur_gml * 100.0
        );
    }
    println!("\nutilization of the splitting baseline degrades as shards shrink;");
    println!("GMLake holds ~99% at every scale.");
}
