//! Dump a Figure-14-style memory-over-time trace as CSV.
//!
//! Replays a GPT-NeoX-20B fine-tuning trace against both allocators and
//! prints `t_s, active, reserved` series suitable for plotting; annotates
//! the OOM point of the baseline when it occurs.
//!
//! Run with: `cargo run --release --example memory_trace > trace.csv`

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;
use gmlake_workload::{to_gib, ReplayOptions, TraceGenerator};

fn main() {
    let cfg = TrainConfig::new(ModelSpec::gpt_neox_20b(), StrategySet::LR)
        .with_seq_len(1024)
        .with_batch(96)
        .with_iterations(6);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let opts = ReplayOptions {
        record_series: true,
        series_stride: 32,
        ..ReplayOptions::default()
    };

    // Both allocators run behind the concurrent `DeviceAllocator` front-end
    // (the type every shared pool is driven through).
    let d1 = CudaDriver::new(DeviceConfig::a100_80g());
    let mut pt = DeviceAllocator::new(CachingAllocator::new(d1.clone()));
    let r_pt = Replayer::new(d1)
        .with_options(opts.clone())
        .replay(&mut pt, &trace, &cfg);

    let d2 = CudaDriver::new(DeviceConfig::a100_80g());
    let mut gml = DeviceAllocator::new(GmLakeAllocator::new(d2.clone(), GmLakeConfig::default()));
    let r_gml = Replayer::new(d2)
        .with_options(opts)
        .replay(&mut gml, &trace, &cfg);

    eprintln!(
        "baseline: {:?} | gmlake: {:?} (peaks {:.1} vs {:.1} GiB reserved)",
        r_pt.outcome,
        r_gml.outcome,
        to_gib(r_pt.peak_reserved),
        to_gib(r_gml.peak_reserved)
    );

    println!("allocator,t_s,active_gib,reserved_gib");
    for s in &r_pt.series {
        println!(
            "pytorch,{:.2},{:.2},{:.2}",
            s.t_ns as f64 / 1e9,
            to_gib(s.active),
            to_gib(s.reserved)
        );
    }
    for s in &r_gml.series {
        println!(
            "gmlake,{:.2},{:.2},{:.2}",
            s.t_ns as f64 / 1e9,
            to_gib(s.active),
            to_gib(s.reserved)
        );
    }
}
