//! Fine-tune OPT-13B (simulated) and compare allocators.
//!
//! Generates the memory trace of a LoRA + recomputation fine-tuning run on
//! DeepSpeed ZeRO-3 (4×A100-80G) and replays it against the PyTorch-style
//! caching allocator and GMLake, reporting the paper's headline metrics:
//! peak reserved memory, utilization/fragmentation, throughput, and
//! GMLake's convergence behaviour.
//!
//! Run with: `cargo run --release --example finetune_llm`

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;
use gmlake_workload::{to_gib, TraceGenerator};

fn main() {
    let cfg = TrainConfig::new(ModelSpec::opt_13b(), StrategySet::LR)
        .with_batch(8)
        .with_iterations(8);
    println!("workload: {}", cfg.label());
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let stats = trace.stats();
    println!(
        "trace: {} allocations over {} iterations, mean tensor {:.1} MiB, ideal peak {:.1} GiB",
        stats.allocs,
        stats.iterations,
        stats.mean_alloc as f64 / (1 << 20) as f64,
        to_gib(stats.peak_live_bytes)
    );
    println!("peak memory by tensor category:");
    for (tag, bytes) in trace.tag_breakdown().sorted() {
        println!("  {:<8} {:>7.2} GiB", tag.name(), to_gib(bytes));
    }
    println!();

    // Both allocators run behind the concurrent `DeviceAllocator` front-end
    // (the type every shared pool is driven through); the sequential
    // replayer accepts it via the `AllocatorCore` compat impl.
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut baseline = DeviceAllocator::new(CachingAllocator::new(driver.clone()));
    let r_base = Replayer::new(driver).replay(&mut baseline, &trace, &cfg);

    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = DeviceAllocator::new(GmLakeAllocator::new(
        driver.clone(),
        GmLakeConfig::default(),
    ));
    let r_lake = Replayer::new(driver).replay(&mut lake, &trace, &cfg);

    for r in [&r_base, &r_lake] {
        println!(
            "{:<18} peak reserved {:>6.1} GiB | peak active {:>6.1} GiB | util {:>5.1}% | {:>6.1} samples/s",
            r.allocator,
            to_gib(r.peak_reserved),
            to_gib(r.peak_active),
            r.utilization() * 100.0,
            r.throughput
        );
    }
    println!(
        "\ngmlake saves {:.1} GiB of reserved memory ({:.1}% of the baseline)",
        to_gib(r_base.peak_reserved.saturating_sub(r_lake.peak_reserved)),
        100.0 * r_base.peak_reserved.saturating_sub(r_lake.peak_reserved) as f64
            / r_base.peak_reserved as f64
    );
    // Typed telemetry behind the type-erased front-end.
    let (history, c) = lake
        .with_core_as::<GmLakeAllocator, _>(|l| {
            (l.non_exact_history().to_vec(), l.state_counters())
        })
        .expect("the wrapped core is GMLake");
    println!("gmlake convergence: non-exact transitions per iteration {history:?}");
    println!(
        "gmlake lifetime ops: {} stitches, {} splits, {} evictions",
        c.stitches, c.splits, c.evictions
    );
}
