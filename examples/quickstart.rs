//! Quickstart: virtual memory stitching in five minutes.
//!
//! Recreates the paper's Figure 1 on a tiny simulated GPU: a fragmented
//! caching allocator dies on a request its total free memory could satisfy,
//! while GMLake stitches the non-contiguous free blocks behind one virtual
//! address range and serves it — then proves the stitched range behaves like
//! flat memory by writing across the physical boundary. Part 3 shares one
//! GMLake pool between threads through the concurrent `DeviceAllocator`
//! front-end.
//!
//! Run with: `cargo run --example quickstart`

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 40 MiB device with byte backing so we can read/write through VAs.
    let device = DeviceConfig::small_test().with_capacity(mib(40));

    // ---------------------------------------------------------------
    // 1. The splitting baseline fragments and dies (Figure 1, left).
    // ---------------------------------------------------------------
    let driver = CudaDriver::new(device.clone());
    let mut bfc = CachingAllocator::new(driver.clone());
    let a = bfc.allocate(AllocRequest::new(mib(6)))?;
    let b = bfc.allocate(AllocRequest::new(mib(6)))?;
    let c = bfc.allocate(AllocRequest::new(mib(8)))?;
    let d = bfc.allocate(AllocRequest::new(mib(6)))?; // second segment
    bfc.deallocate(a.id)?;
    bfc.deallocate(c.id)?;
    println!(
        "caching allocator: {} MiB free in pieces, largest contiguous {} MiB",
        bfc.free_bytes() / mib(1),
        bfc.largest_free_block() / mib(1)
    );
    let err = bfc
        .allocate(AllocRequest::new(mib(16)))
        .expect_err("fragmented pool cannot serve 16 MiB");
    println!("caching allocator: 16 MiB request fails: {err}\n");
    bfc.deallocate(b.id)?;
    bfc.deallocate(d.id)?;
    drop(bfc);

    // ---------------------------------------------------------------
    // 2. GMLake stitches the same fragments and survives (Figure 1, right).
    // ---------------------------------------------------------------
    let driver = CudaDriver::new(device);
    let config = GmLakeConfig::default().with_frag_limit(mib(2));
    let mut lake = GmLakeAllocator::new(driver.clone(), config);
    let a = lake.allocate(AllocRequest::new(mib(6)))?;
    let b = lake.allocate(AllocRequest::new(mib(6)))?;
    let c = lake.allocate(AllocRequest::new(mib(8)))?;
    let d = lake.allocate(AllocRequest::new(mib(6)))?;
    lake.deallocate(a.id)?;
    lake.deallocate(c.id)?;

    let big = lake.allocate(AllocRequest::new(mib(14)))?;
    println!(
        "gmlake: 14 MiB tensor stitched from freed 6 + 8 MiB blocks at {}",
        big.va
    );
    println!(
        "gmlake: physical memory in use is still {} MiB (nothing new allocated)",
        driver.phys_in_use() / mib(1)
    );

    // The stitched range is contiguous to the tensor: write a pattern
    // across what is physically a block boundary and read it back.
    let boundary = big.va.offset(mib(8) - 4);
    driver.memcpy_htod(boundary, b"stitched, not moved!")?;
    let mut readback = [0u8; 20];
    driver.memcpy_dtoh(boundary, &mut readback)?;
    assert_eq!(&readback, b"stitched, not moved!");
    println!("gmlake: write/read across the stitch boundary round-trips\n");

    let counters = lake.state_counters();
    println!(
        "gmlake state counters: exact={} single={} multi={} alloc={} (stitches={})",
        counters.exact, counters.single, counters.multi, counters.insufficient, counters.stitches
    );

    lake.deallocate(big.id)?;
    lake.deallocate(b.id)?;
    lake.deallocate(d.id)?;

    // ---------------------------------------------------------------
    // 3. Many threads, one pool: the concurrent DeviceAllocator front-end.
    //    Small tensors ride per-size-class shard caches (no pool mutex);
    //    large/stitch traffic falls back to the wrapped GMLake core.
    // ---------------------------------------------------------------
    let pool = DeviceAllocator::new(lake);
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let pool = pool.clone();
            s.spawn(move || {
                for _ in 0..256 {
                    let a = pool
                        .allocate(AllocRequest::new(kib(64 + 16 * t)))
                        .expect("small tensors always fit here");
                    pool.deallocate(a.id).expect("live");
                }
            });
        }
    });
    let stats = pool.stats();
    let cache = pool.cache_stats();
    println!(
        "\ndevice-allocator: 4 threads x 256 small alloc/free — {} allocs, {} frees, \
         {} shard hits / {} misses, {} blocks cached",
        stats.alloc_count, stats.free_count, cache.hits, cache.misses, cache.cached_blocks
    );
    // Typed telemetry still works behind the type-erased front-end.
    let stitches = pool
        .with_core_as::<GmLakeAllocator, _>(|l| l.state_counters().stitches)
        .expect("the wrapped core is GMLake");
    println!("device-allocator: wrapped gmlake core reports {stitches} lifetime stitches");
    assert_eq!(stats.active_bytes, 0);
    Ok(())
}
