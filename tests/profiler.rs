//! End-to-end telemetry test: a fig11-style profiled scale-out replay
//! through the whole stack (core stitch decisions → front-end hot paths →
//! driver clock/histogram → runtime profiler), asserting the acceptance
//! criteria of the observability layer:
//!
//! * the snapshot's reserved-bytes timeline reconciles with the pools'
//!   final `MemStats` (last sample == final gauges, checked both directly
//!   and via `MemorySnapshot::validate_json`);
//! * the JSON export round-trips exactly and passes schema validation;
//! * the chrome://tracing export parses as valid JSON with the expected
//!   envelope.

use gmlake::telemetry::{json, EventKind, MemorySnapshot};
use gmlake_bench::run_scaleout_profiled;
use gmlake_workload::{ModelSpec, StrategySet, TrainConfig};

const RANKS: u32 = 2;

fn profiled_cfg() -> TrainConfig {
    TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_batch(16)
        .with_gpus(RANKS)
        .with_iterations(2)
}

#[test]
fn profiled_replay_timeline_reconciles_with_final_memstats() {
    let (report, snapshot) = run_scaleout_profiled(&profiled_cfg(), RANKS);
    assert!(report.all_completed(), "profiled replay must complete");
    assert_eq!(snapshot.pools.len(), RANKS as usize, "one pool per rank");

    for pool in &snapshot.pools {
        // The profiler records a final sample at dump time, so the
        // timeline's last point is exactly the pool's closing MemStats.
        let last = pool
            .samples
            .last()
            .expect("profiler records at least the start and dump samples");
        assert_eq!(
            last.reserved_bytes, pool.final_reserved,
            "{}: timeline end must reconcile with final reserved bytes",
            pool.pool
        );
        assert_eq!(
            last.active_bytes, pool.final_active,
            "{}: timeline end must reconcile with final active bytes",
            pool.pool
        );
        // The replay starts from an empty pool and allocates: the series
        // must have actually moved.
        assert!(pool.samples.len() >= 2, "start + iterations + dump samples");
        assert!(
            pool.samples.iter().any(|s| s.reserved_bytes > 0),
            "{}: replay must reserve memory on the timeline",
            pool.pool
        );

        // Cross-layer events all arrived in one trace: the front-end's
        // alloc path and the core's BestFit decisions.
        assert!(
            pool.events.iter().any(|e| e.kind == EventKind::Alloc),
            "{}: front-end alloc events recorded",
            pool.pool
        );
        assert!(
            pool.events
                .iter()
                .any(|e| e.kind == EventKind::StitchDecision),
            "{}: core BestFit decision events recorded",
            pool.pool
        );

        // The latency histograms around the hot paths saw traffic.
        let alloc_hist = pool
            .histograms
            .iter()
            .find(|(name, _)| name == "alloc_ns")
            .map(|(_, h)| h)
            .expect("alloc_ns histogram present");
        assert!(alloc_hist.count > 0, "alloc_ns histogram saw traffic");
        let driver_hist = pool
            .histograms
            .iter()
            .find(|(name, _)| name == "driver_ns")
            .map(|(_, h)| h)
            .expect("driver_ns histogram present");
        assert!(driver_hist.count > 0, "driver_ns histogram saw traffic");
    }
}

#[test]
fn profiled_replay_snapshot_exports_validate() {
    let (_, snapshot) = run_scaleout_profiled(&profiled_cfg(), RANKS);

    // JSON export: schema-validates (including the timeline/final-gauge
    // reconciliation check) and round-trips exactly.
    let text = snapshot.to_json();
    MemorySnapshot::validate_json(&text).expect("snapshot passes gmlake-snapshot/v1 validation");
    let back = MemorySnapshot::from_json(&text).expect("snapshot JSON parses back");
    assert_eq!(back, snapshot, "JSON round-trip is lossless");

    // chrome://tracing export: valid JSON with the traceEvents envelope,
    // one counter event per timeline sample plus instants and metadata.
    let trace = snapshot.to_chrome_trace();
    let doc = json::parse(&trace).expect("chrome trace is valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .expect("chrome trace has a traceEvents array");
    let samples: usize = snapshot.pools.iter().map(|p| p.samples.len()).sum();
    let counters = events
        .iter()
        .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
        .count();
    assert_eq!(counters, samples, "one counter event per timeline sample");
}
