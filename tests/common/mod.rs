//! Shared differential-test machinery: the single-mutex `MirrorCore`
//! oracle (used by `stream_differential`), the seeded `xorshift` PRNG
//! (used by `stream_interleaving`), and the lockstep trace driver the
//! planning suite replays two `AllocatorCore`s with (`planning_differential`).
//!
//! Each integration-test crate compiles this module independently and
//! uses a different subset, hence the file-wide `dead_code` allowance.
#![allow(dead_code)]

use std::collections::HashMap;

use gmlake::prelude::*;
use gmlake_workload::{Trace, TraceEvent};

/// The single-mutex oracle's core: strict accounting against a byte budget,
/// no caching, no rounding — deterministic feasibility (`active + size <=
/// capacity`) and exact counters. Differential suites run the same type on
/// both sides, so any disagreement is introduced by the layer under test.
#[derive(Default)]
pub struct MirrorCore {
    next: u64,
    live: HashMap<AllocationId, u64>,
    stats: MemStats,
    capacity: u64,
}

impl MirrorCore {
    /// A mirror that refuses allocations past `capacity` active bytes
    /// (`capacity == 0` means unbounded).
    pub fn bounded(capacity: u64) -> Self {
        MirrorCore {
            capacity,
            ..MirrorCore::default()
        }
    }
}

impl AllocatorCore for MirrorCore {
    fn allocate(&mut self, req: AllocRequest) -> Result<Allocation, AllocError> {
        if req.size == 0 {
            return Err(AllocError::ZeroSize);
        }
        if self.capacity > 0 && self.stats.active_bytes + req.size > self.capacity {
            return Err(AllocError::OutOfMemory {
                requested: req.size,
                reserved: self.stats.reserved_bytes,
                capacity: self.capacity,
            });
        }
        self.next += 1;
        let id = AllocationId::new(self.next);
        self.live.insert(id, req.size);
        self.stats.on_alloc(req.size, req.size);
        let active = self.stats.active_bytes;
        self.stats
            .set_reserved(active.max(self.stats.reserved_bytes));
        Ok(Allocation {
            id,
            va: VirtAddr::new(self.next << 24),
            size: req.size,
            requested: req.size,
        })
    }

    fn deallocate(&mut self, id: AllocationId) -> Result<(), AllocError> {
        let size = self
            .live
            .remove(&id)
            .ok_or(AllocError::UnknownAllocation(id))?;
        self.stats.on_free(size);
        Ok(())
    }

    fn stats(&self) -> MemStats {
        self.stats
    }

    fn name(&self) -> &'static str {
        "mirror-core"
    }

    fn release_cached(&mut self) -> u64 {
        let releasable = self.stats.reserved_bytes - self.stats.active_bytes;
        let active = self.stats.active_bytes;
        self.stats.reserved_bytes = active;
        releasable
    }
}

/// The single-mutex oracle: the pre-PR 3 `SharedAllocator` shape — every
/// call funnels through one lock, no cache, no streams. `free_on_stream`
/// falls back to plain `deallocate` via the trait default, which is exactly
/// the stream-oblivious semantics the front-end must be equivalent to.
pub struct MutexOracle(pub std::sync::Mutex<MirrorCore>);

impl MutexOracle {
    /// Wraps a [`MirrorCore`] bounded at `capacity` (0 = unbounded).
    pub fn bounded(capacity: u64) -> Self {
        MutexOracle(std::sync::Mutex::new(MirrorCore::bounded(capacity)))
    }

    pub fn alloc(&self, size: u64) -> Result<Allocation, AllocError> {
        self.0.lock().unwrap().allocate(AllocRequest::new(size))
    }

    pub fn free(&self, id: AllocationId, stream: StreamId) -> Result<(), AllocError> {
        self.0.lock().unwrap().free_on_stream(id, stream)
    }

    pub fn stats(&self) -> MemStats {
        self.0.lock().unwrap().stats()
    }
}

/// The deterministic-interleaving suites' seeded PRNG (xorshift64).
pub fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

/// What the lockstep trace driver observed.
#[derive(Debug, Default, Clone, Copy)]
pub struct LockstepReport {
    /// Alloc events where both sides succeeded.
    pub agreed_allocs: u64,
    /// Alloc events where both sides returned `OutOfMemory`.
    pub agreed_ooms: u64,
    /// Alloc events the subject served but the oracle refused (only
    /// permitted when the driver runs with `allow_subject_wins`).
    pub subject_wins: u64,
    /// Peak `reserved_bytes` the subject reported after any event.
    pub subject_peak_reserved: u64,
    /// Peak `reserved_bytes` the oracle reported after any event.
    pub oracle_peak_reserved: u64,
}

/// Replays `trace` through `subject` and `oracle` in lockstep, asserting
/// per-op outcome agreement.
///
/// * Both sides see the same alloc/free sequence on the same streams;
///   iteration ends invoke `iteration_boundary` + `process_events` on
///   both, mirroring the `Replayer`'s synchronization points.
/// * An alloc must either succeed on both sides or fail with
///   `OutOfMemory` on both. With `allow_subject_wins`, the subject may
///   additionally succeed where the oracle OOMs (a planner packing
///   tighter than the reactive core is *better*, not divergent) — but a
///   subject OOM where the oracle succeeds always panics.
/// * OOM-failed keys are skipped on later frees for the failing side,
///   matching `ReplayOptions { stop_on_oom: false }` semantics.
pub fn lockstep_replay(
    trace: &Trace,
    subject: &mut dyn AllocatorCore,
    oracle: &mut dyn AllocatorCore,
    allow_subject_wins: bool,
) -> LockstepReport {
    let mut report = LockstepReport::default();
    let mut subject_live: HashMap<u64, AllocationId> = HashMap::new();
    let mut oracle_live: HashMap<u64, AllocationId> = HashMap::new();

    for (i, ev) in trace.events.iter().enumerate() {
        match *ev {
            TraceEvent::Alloc {
                key, size, stream, ..
            } => {
                let s = subject.alloc_on_stream(AllocRequest::new(size), stream);
                let o = oracle.alloc_on_stream(AllocRequest::new(size), stream);
                match (s, o) {
                    (Ok(sa), Ok(oa)) => {
                        assert!(sa.size >= size, "op {i}: subject short-served {key}");
                        assert!(oa.size >= size, "op {i}: oracle short-served {key}");
                        subject_live.insert(key, sa.id);
                        oracle_live.insert(key, oa.id);
                        report.agreed_allocs += 1;
                    }
                    (Err(AllocError::OutOfMemory { .. }), Err(AllocError::OutOfMemory { .. })) => {
                        report.agreed_ooms += 1;
                    }
                    (Ok(sa), Err(AllocError::OutOfMemory { .. })) if allow_subject_wins => {
                        subject_live.insert(key, sa.id);
                        report.subject_wins += 1;
                    }
                    (s, o) => panic!(
                        "op {i}: outcome divergence on key {key} ({size} B, {stream:?}): \
                         subject {s:?} vs oracle {o:?}"
                    ),
                }
            }
            TraceEvent::Free { key, stream } => {
                if let Some(id) = subject_live.remove(&key) {
                    subject
                        .free_on_stream(id, stream)
                        .unwrap_or_else(|e| panic!("op {i}: subject free of {key} failed: {e:?}"));
                }
                if let Some(id) = oracle_live.remove(&key) {
                    oracle
                        .free_on_stream(id, stream)
                        .unwrap_or_else(|e| panic!("op {i}: oracle free of {key} failed: {e:?}"));
                }
            }
            TraceEvent::Compute { .. } | TraceEvent::IterBegin { .. } => {}
            TraceEvent::IterEnd { .. } => {
                subject.iteration_boundary();
                subject.process_events();
                oracle.iteration_boundary();
                oracle.process_events();
            }
        }
        report.subject_peak_reserved = report
            .subject_peak_reserved
            .max(subject.stats().reserved_bytes);
        report.oracle_peak_reserved = report
            .oracle_peak_reserved
            .max(oracle.stats().reserved_bytes);
    }
    assert!(subject_live.is_empty(), "trace left subject keys live");
    assert!(oracle_live.is_empty(), "trace left oracle keys live");
    report
}
