//! Property-based tests: random (de)allocation programs against both
//! allocators and the raw driver, checking structural invariants after
//! every step and full teardown at the end.

use proptest::prelude::*;

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;

/// One step of a random allocator program.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate this many bytes (allocators round internally).
    Alloc(u64),
    /// Free the n-th (mod live count) live allocation.
    Free(usize),
    /// Release cached memory (like `torch.cuda.empty_cache`).
    ReleaseCached,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        5 => (512u64..8 * 1024 * 1024).prop_map(Op::Alloc),
        4 => any::<usize>().prop_map(Op::Free),
        1 => Just(Op::ReleaseCached),
    ]
}

/// Drives a program against an allocator; returns the surviving ids.
fn run_program<A: AllocatorCore>(
    alloc: &mut A,
    ops: &[Op],
    mut check: impl FnMut(&mut A),
) -> Vec<AllocationId> {
    let mut live: Vec<(AllocationId, u64)> = Vec::new();
    for op in ops {
        match op {
            Op::Alloc(size) => match alloc.allocate(AllocRequest::new(*size)) {
                Ok(a) => {
                    assert!(a.size >= *size, "undersized block");
                    live.push((a.id, a.size));
                }
                Err(AllocError::OutOfMemory { .. }) => {}
                Err(e) => panic!("unexpected allocator error: {e}"),
            },
            Op::Free(n) => {
                if !live.is_empty() {
                    let (id, _) = live.swap_remove(n % live.len());
                    alloc.deallocate(id).unwrap();
                }
            }
            Op::ReleaseCached => {
                alloc.release_cached();
            }
        }
        check(alloc);
        let expected_active: u64 = live.iter().map(|(_, s)| s).sum();
        let stats = alloc.stats();
        assert_eq!(stats.active_bytes, expected_active, "active accounting");
        assert!(stats.reserved_bytes >= stats.active_bytes);
        assert_eq!(stats.live_allocations(), live.len() as u64);
    }
    live.into_iter().map(|(id, _)| id).collect()
}

fn small_device() -> CudaDriver {
    CudaDriver::new(
        DeviceConfig::small_test()
            .with_capacity(mib(64))
            .with_backing(false),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn caching_allocator_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let driver = small_device();
        let mut alloc = CachingAllocator::new(driver.clone());
        let survivors = run_program(&mut alloc, &ops, |a| a.validate().unwrap());
        for id in survivors {
            alloc.deallocate(id).unwrap();
        }
        alloc.validate().unwrap();
        prop_assert_eq!(alloc.stats().active_bytes, 0);
        // Everything is releasable once nothing is live.
        alloc.release_cached();
        prop_assert_eq!(alloc.stats().reserved_bytes, 0);
        drop(alloc);
        prop_assert!(driver.snapshot().is_quiescent());
    }

    #[test]
    fn gmlake_invariants_hold(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let driver = small_device();
        let mut alloc = GmLakeAllocator::new(
            driver.clone(),
            GmLakeConfig::default().with_frag_limit(mib(2)).with_cache_split_halves(true),
        );
        let survivors = run_program(&mut alloc, &ops, |a| a.validate().unwrap());
        // Reserved physical memory never exceeds the device, and the device
        // agrees with the allocator at all times.
        prop_assert_eq!(driver.phys_in_use(), alloc.stats().reserved_bytes);
        for id in survivors {
            alloc.deallocate(id).unwrap();
        }
        alloc.validate().unwrap();
        prop_assert_eq!(alloc.stats().active_bytes, 0);
        alloc.release_cached();
        prop_assert_eq!(alloc.stats().reserved_bytes, 0);
        drop(alloc);
        prop_assert!(driver.snapshot().is_quiescent());
    }

    #[test]
    fn gmlake_and_caching_agree_on_feasibility_of_flat_programs(
        sizes in prop::collection::vec(512u64..4 * 1024 * 1024, 1..24)
    ) {
        // Allocate-all-then-free-all programs must succeed identically on
        // both allocators (no fragmentation is possible without churn).
        // The device is sized so that even worst-case segment-granularity
        // overhead (a fresh 20 MiB segment per request) cannot OOM.
        let roomy = || {
            CudaDriver::new(
                DeviceConfig::small_test()
                    .with_capacity(gib(1))
                    .with_backing(false),
            )
        };
        let mut bfc = CachingAllocator::new(roomy());
        let mut lake = GmLakeAllocator::new(roomy(), GmLakeConfig::default());
        for alloc in [&mut bfc as &mut dyn AllocatorCore, &mut lake as &mut dyn AllocatorCore] {
            let ids: Vec<_> = sizes
                .iter()
                .map(|s| alloc.allocate(AllocRequest::new(*s)).unwrap().id)
                .collect();
            for id in ids {
                alloc.deallocate(id).unwrap();
            }
            prop_assert_eq!(alloc.stats().active_bytes, 0);
        }
    }

    #[test]
    fn gmlake_data_integrity_under_churn(ops in prop::collection::vec(op_strategy(), 1..60)) {
        // Every live allocation carries a unique pattern at its head and
        // tail; stitching/splitting must never corrupt it (this is the
        // aliasing-correctness property of multi-VA mapping).
        let driver = CudaDriver::new(DeviceConfig::small_test().with_capacity(mib(64)));
        let mut alloc = GmLakeAllocator::new(
            driver.clone(),
            GmLakeConfig::default().with_frag_limit(mib(2)),
        );
        let mut live: Vec<(AllocationId, gmlake_alloc_api::VirtAddr, u64, u64)> = Vec::new();
        let mut counter = 0u64;
        for op in &ops {
            match op {
                Op::Alloc(size) => {
                    if let Ok(a) = alloc.allocate(AllocRequest::new(*size)) {
                        counter += 1;
                        let pat = counter.to_le_bytes();
                        driver.memcpy_htod(a.va, &pat).unwrap();
                        driver.memcpy_htod(a.va.offset(a.size - 8), &pat).unwrap();
                        live.push((a.id, a.va, a.size, counter));
                    }
                }
                Op::Free(_) | Op::ReleaseCached if !live.is_empty() => {
                    let idx = match op {
                        Op::Free(n) => n % live.len(),
                        _ => 0,
                    };
                    let (id, va, size, pat) = live.swap_remove(idx);
                    let mut head = [0u8; 8];
                    let mut tail = [0u8; 8];
                    driver.memcpy_dtoh(va, &mut head).unwrap();
                    driver.memcpy_dtoh(va.offset(size - 8), &mut tail).unwrap();
                    prop_assert_eq!(u64::from_le_bytes(head), pat, "head corrupted");
                    prop_assert_eq!(u64::from_le_bytes(tail), pat, "tail corrupted");
                    alloc.deallocate(id).unwrap();
                }
                _ => {}
            }
        }
        // Verify all survivors before teardown.
        for (_, va, size, pat) in &live {
            let mut head = [0u8; 8];
            driver.memcpy_dtoh(*va, &mut head).unwrap();
            prop_assert_eq!(u64::from_le_bytes(head), *pat);
            let mut tail = [0u8; 8];
            driver.memcpy_dtoh(va.offset(size - 8), &mut tail).unwrap();
            prop_assert_eq!(u64::from_le_bytes(tail), *pat);
        }
    }

    #[test]
    fn driver_accounting_matches_model(
        chunk_counts in prop::collection::vec(1u64..8, 1..16)
    ) {
        // Create pBlock-like groups, alias half of them at second VAs, then
        // tear down in reverse; physical accounting must match a simple
        // model at every step.
        let driver = small_device();
        let gran = driver.granularity();
        let mut groups = Vec::new();
        let mut model_in_use = 0u64;
        for (i, &n) in chunk_counts.iter().enumerate() {
            let size = n * gran;
            if model_in_use + size > driver.capacity() {
                break;
            }
            let va = driver.mem_address_reserve(size).unwrap();
            let mut handles = Vec::new();
            for k in 0..n {
                let h = driver.mem_create(gran).unwrap();
                driver.mem_map(va.offset(k * gran), gran, 0, h).unwrap();
                handles.push(h);
            }
            driver.mem_set_access(va, size, true).unwrap();
            model_in_use += size;
            prop_assert_eq!(driver.phys_in_use(), model_in_use);
            // Alias every even group at a second VA (stitch-style).
            let alias = if i % 2 == 0 {
                let va2 = driver.mem_address_reserve(size).unwrap();
                for (k, h) in handles.iter().enumerate() {
                    driver.mem_map(va2.offset(k as u64 * gran), gran, 0, *h).unwrap();
                }
                driver.mem_set_access(va2, size, true).unwrap();
                // Aliasing is free: no physical growth.
                prop_assert_eq!(driver.phys_in_use(), model_in_use);
                Some(va2)
            } else {
                None
            };
            groups.push((va, size, handles, alias));
        }
        for (va, size, handles, alias) in groups.into_iter().rev() {
            if let Some(va2) = alias {
                driver.mem_unmap(va2, size).unwrap();
                driver.mem_address_free(va2, size).unwrap();
            }
            driver.mem_unmap(va, size).unwrap();
            for h in handles {
                driver.mem_release(h).unwrap();
            }
            driver.mem_address_free(va, size).unwrap();
            model_in_use -= size;
            prop_assert_eq!(driver.phys_in_use(), model_in_use);
        }
        prop_assert!(driver.snapshot().is_quiescent());
    }
}
