//! Chaos replay: the fine-tuning trace corpus under seeded driver-fault
//! schedules (see `docs/fault-model.md`).
//!
//! Every driver entry point is failed at several deterministic points in
//! the trace, and the probabilistic soak mode sprays transient faults over
//! a longer run. After every schedule the allocator must hold the
//! acceptance invariants: no panic, `validate()` clean, the fault journal
//! free of leaked reservations/handles, no outstanding events, and the
//! allocator's `MemStats` reconciled against the simulated device.

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;
use gmlake_workload::{ReplayOptions, TraceGenerator};

/// A small-but-real fine-tuning workload that runs fast in debug builds.
fn small_workload() -> TrainConfig {
    TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_seq_len(256)
        .with_batch(2)
        .with_iterations(3)
}

/// Replay options for fault runs: never stop, count skips and faults.
fn chaos_options() -> ReplayOptions {
    ReplayOptions {
        stop_on_oom: false,
        skip_on_fault: true,
        ..ReplayOptions::default()
    }
}

/// Runs `trace` on a fresh GMLake allocator with `plan` installed from the
/// first event, then checks every invariant the fault model promises.
fn run_schedule(plan: FaultPlan, label: &str) {
    let cfg = small_workload();
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    driver.set_fault_plan(plan);

    let report = Replayer::new(driver.clone())
        .with_options(chaos_options())
        .replay(&mut lake, &trace, &cfg);

    // The device actually injected under this schedule (otherwise the
    // schedule tests nothing).
    let injected = driver.stats().injected_faults;
    assert!(injected > 0, "{label}: schedule never fired");
    assert!(report.outcome.is_completed(), "{label}: replay stopped");

    // Internal invariants hold with the plan still armed...
    lake.validate().unwrap_or_else(|e| panic!("{label}: {e}"));

    // ...and the pool reconciles fully once faults stop. A transient
    // schedule is consumed by now, but clear it so teardown can't re-fire.
    driver.clear_fault_plan();
    let journal = lake.fault_journal();
    assert_eq!(
        lake.stats().active_bytes,
        0,
        "{label}: live bytes survived the drain"
    );
    assert_eq!(
        driver.outstanding_events(),
        0,
        "{label}: leaked driver events"
    );
    lake.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
    if journal.orphan_chunks == 0 {
        assert_eq!(
            lake.stats().reserved_bytes,
            driver.phys_in_use(),
            "{label}: MemStats out of sync with the device"
        );
    } else {
        // Orphaned physical chunks stay charged to the device but are no
        // longer the pool's to report.
        assert!(
            driver.phys_in_use() >= lake.stats().reserved_bytes,
            "{label}: pool reports more than the device holds"
        );
    }
    // Releasing the cache must also survive (faults are off now).
    lake.release_cached();
    lake.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
}

/// Single transient fault at each driver entry point, early and mid-trace.
/// Creation-path and rollback-capable teardown ops must come out leak-free;
/// an `mem_address_free` fault past a commit point is allowed to orphan
/// exactly one VA reservation (journaled, never silent).
#[test]
fn deterministic_single_fault_schedules_preserve_invariants() {
    for op in FaultOp::ALL {
        for nth in [1u64, 5] {
            let label = format!("fail_nth({op:?}, {nth})");
            let cfg = small_workload();
            let trace = TraceGenerator::new(cfg.clone()).generate();
            let driver = CudaDriver::new(DeviceConfig::a100_80g());
            let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
            driver.set_fault_plan(FaultPlan::new().fail_nth(op, nth));

            let report = Replayer::new(driver.clone())
                .with_options(chaos_options())
                .replay(&mut lake, &trace, &cfg);

            if driver.stats().injected_faults == 0 {
                // This op is never the nth call in this trace (e.g. the
                // native mem_alloc path is off GMLake's large path);
                // nothing to check beyond a clean run.
                assert!(report.outcome.is_completed(), "{label}");
                lake.validate().unwrap_or_else(|e| panic!("{label}: {e}"));
                continue;
            }

            assert!(report.outcome.is_completed(), "{label}: replay stopped");
            lake.validate().unwrap_or_else(|e| panic!("{label}: {e}"));

            driver.clear_fault_plan();
            let journal = lake.fault_journal();
            if op == FaultOp::AddressFree {
                assert!(
                    journal.orphan_vas <= 1 && journal.orphan_chunks == 0,
                    "{label}: {journal:?}"
                );
            } else {
                assert!(
                    journal.is_leak_free(),
                    "{label}: single transient fault leaked: {journal:?}"
                );
            }
            assert_eq!(lake.stats().active_bytes, 0, "{label}: live bytes leaked");
            assert_eq!(driver.outstanding_events(), 0, "{label}: leaked events");
            if journal.orphan_vas == 0 && journal.orphan_chunks == 0 {
                assert_eq!(
                    lake.stats().reserved_bytes,
                    driver.phys_in_use(),
                    "{label}: MemStats out of sync with the device"
                );
            }
        }
    }
}

/// Back-to-back transient faults on the stitch-critical map path.
#[test]
fn repeated_map_faults_recover() {
    run_schedule(
        FaultPlan::new()
            .fail_nth(FaultOp::Map, 1)
            .fail_nth(FaultOp::Map, 2)
            .fail_nth(FaultOp::Map, 7),
        "map burst",
    );
}

/// A persistent window (every map call from the 3rd on fails for the rest
/// of the armed plan) forces the degraded paths while it lasts.
#[test]
fn persistent_map_fault_window_degrades_without_leaking() {
    let cfg = small_workload();
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    driver.set_fault_plan(FaultPlan::new().fail_from(FaultOp::Map, 3));

    let report = Replayer::new(driver.clone())
        .with_options(chaos_options())
        .replay(&mut lake, &trace, &cfg);
    assert!(driver.stats().injected_faults > 0);
    assert!(report.outcome.is_completed());
    assert!(report.faulted_allocs > 0, "persistent faults must surface");
    lake.validate().unwrap();

    // Once the fault clears, the pool serves the same workload again.
    driver.clear_fault_plan();
    let report = Replayer::new(driver.clone())
        .with_options(chaos_options())
        .replay(&mut lake, &trace, &cfg);
    assert!(report.outcome.is_completed());
    assert_eq!(report.faulted_allocs, 0, "recovered run is fault-free");
    lake.validate().unwrap();
    assert_eq!(lake.stats().active_bytes, 0);
}

/// Probabilistic soak: a seeded 1-in-250 fault rate across every driver
/// entry point over a longer run. Deterministic for a fixed seed.
#[test]
fn probabilistic_soak_is_stable() {
    let cfg = small_workload().with_iterations(5);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    driver.set_fault_plan(FaultPlan::new().with_probabilistic(0xC0FFEE, 250));

    let report = Replayer::new(driver.clone())
        .with_options(chaos_options())
        .replay(&mut lake, &trace, &cfg);

    let injected = driver.stats().injected_faults;
    assert!(injected > 0, "soak never injected");
    assert!(report.outcome.is_completed());
    lake.validate().unwrap();

    driver.clear_fault_plan();
    let journal = lake.fault_journal();
    // Orphans need a fault *inside* a compensation sequence — rare even at
    // this rate — and every one must be journaled, never silent.
    assert!(
        journal.orphan_vas + journal.orphan_chunks <= injected,
        "journal claims more orphans than faults: {journal:?}"
    );
    assert_eq!(lake.stats().active_bytes, 0, "soak leaked live bytes");
    assert_eq!(driver.outstanding_events(), 0);
    lake.release_cached();
    lake.validate().unwrap();
}

/// The full stack under soak: a `PoolService` pool (retry + breaker +
/// staged rescue) rides out a transient fault rate the raw core would
/// surface, with telemetry counting what the service absorbed.
#[test]
fn pool_service_soak_absorbs_transient_faults() {
    let cfg = small_workload().with_iterations(4);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let service = PoolService::new();
    let pool = service
        .register(
            DeviceId(0),
            Box::new(GmLakeAllocator::new(
                driver.clone(),
                GmLakeConfig::default(),
            )),
        )
        .unwrap();
    driver.set_fault_plan(FaultPlan::new().with_probabilistic(0x5EED, 400));

    let mut front = pool.clone();
    let report = Replayer::new(driver.clone())
        .with_options(chaos_options())
        .replay(&mut front, &trace, &cfg);

    assert!(driver.stats().injected_faults > 0, "soak never injected");
    assert!(report.outcome.is_completed());

    driver.clear_fault_plan();
    let fault_stats = pool.fault_stats();
    // Allocation-path faults are retried by the service, so the replayer
    // saw at most the free-path ones.
    assert!(
        fault_stats.retries >= fault_stats.faults.saturating_sub(report.faulted_allocs),
        "service under-retried: {fault_stats:?}"
    );
    pool.release_cached();
    assert_eq!(pool.stats().active_bytes, 0);
    pool.with_allocator(|core| {
        let lake = core
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<GmLakeAllocator>())
            .expect("gmlake core");
        lake.validate().unwrap();
        let journal = lake.fault_journal();
        assert!(
            journal.orphan_vas + journal.orphan_chunks <= driver.stats().injected_faults,
            "{journal:?}"
        );
    });
}

/// A `MemMap` fault landing *inside an optimistic large commit* (PR 9):
/// the front-end's per-stream large bank misses, takes the commit-time
/// core lock, and the stitch it commits faults on its map call. The
/// rollback doctrine must hold exactly as it does under the plain mutex:
/// the fault surfaces as `AllocError::DriverFault`, the compensating
/// unwind leaves the core valid and leak-free, the bank's live table has
/// no ghost entry, and the same request succeeds once the fault clears.
#[test]
fn memmap_fault_inside_optimistic_large_commit_rolls_back() {
    use gmlake_alloc_api::DeviceAllocatorConfig;
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let lake = GmLakeAllocator::new(
        driver.clone(),
        GmLakeConfig::default().with_frag_limit(mib(2)),
    );
    let pool = DeviceAllocator::with_config_and_events(
        lake,
        DeviceAllocatorConfig::default().with_streams(4),
        std::sync::Arc::new(driver.clone()),
    );
    // Prime a 4 + 6 MiB inactive pair *in the core* (flush moves the
    // bank-parked blocks down), so a 10 MiB request classifies S3 and the
    // commit under the core lock is a real stitch.
    let a = pool
        .alloc_on_stream(AllocRequest::new(mib(4)), StreamId(1))
        .unwrap();
    let b = pool
        .alloc_on_stream(AllocRequest::new(mib(6)), StreamId(1))
        .unwrap();
    pool.free_on_stream(a.id, StreamId(1)).unwrap();
    pool.free_on_stream(b.id, StreamId(1)).unwrap();
    pool.flush();
    let stats_before = pool.stats();

    // Arm: the next map call is the stitch's, inside the commit.
    driver.set_fault_plan(FaultPlan::new().fail_nth(FaultOp::Map, 1));
    let err = pool
        .alloc_on_stream(AllocRequest::new(mib(10)), StreamId(2))
        .unwrap_err();
    assert!(
        matches!(err, AllocError::DriverFault { .. }),
        "commit fault must surface with its source chain, got {err:?}"
    );
    assert!(driver.stats().injected_faults > 0, "schedule never fired");

    // Rollback doctrine: core valid + leak-free, no ghost bank entry.
    driver.clear_fault_plan();
    pool.with_core_as::<GmLakeAllocator, _>(|lake| {
        lake.validate().unwrap();
        let journal = lake.fault_journal();
        assert!(journal.is_leak_free(), "commit unwind leaked: {journal:?}");
        assert_eq!(journal.failed_ops, 1, "exactly the faulted stitch");
    })
    .expect("gmlake core");
    let s = pool.stats();
    assert_eq!(s.active_bytes, stats_before.active_bytes, "no ghost bytes");
    assert_eq!(
        s.alloc_count, stats_before.alloc_count,
        "failed alloc uncounted"
    );

    // Same request, fault cleared: the stitch commits and reconciles.
    let c = pool
        .alloc_on_stream(AllocRequest::new(mib(10)), StreamId(2))
        .unwrap();
    assert_eq!(c.size, mib(10));
    pool.free_on_stream(c.id, StreamId(2)).unwrap();
    pool.flush();
    pool.with_core_as::<GmLakeAllocator, _>(|lake| lake.validate().unwrap())
        .expect("gmlake core");
    assert_eq!(pool.stats().active_bytes, 0);
    assert_eq!(driver.outstanding_events(), 0, "leaked driver events");
}

/// A `MemMap` fault inside a **residue stitch under `PlannedCore`**: the
/// planned core routes an unplanned 10 MiB request to its GMLake
/// fallback, whose stitch commit faults at map time. The fault must
/// surface as `AllocError::DriverFault`, the plan tables (slots, queues,
/// live set) must be untouched — including a plan-served allocation held
/// live across the fault — and the rollback doctrine holds: `validate()`
/// clean, fault journal leak-free, and the same request succeeds once the
/// fault clears.
#[test]
fn memmap_fault_inside_planned_residue_stitch_rolls_back() {
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut core = PlannedCore::new(
        driver.clone(),
        PlannedConfig {
            gmlake: GmLakeConfig::default().with_frag_limit(mib(2)),
            ..PlannedConfig::default()
        },
    );

    // Record one synthetic iteration of 1 MiB transients, then install
    // the plan at the boundary.
    for _ in 0..6 {
        let a = core.allocate(AllocRequest::new(mib(1))).unwrap();
        core.deallocate(a.id).unwrap();
    }
    core.iteration_boundary();
    assert!(core.is_serving(), "plan must be installed");
    let plan_before = core.plan().unwrap();

    // Prime a 4 + 6 MiB inactive pair in the *fallback* (both sizes are
    // residue — no such plan slot), so the next 10 MiB residue request
    // stitches. Hold one plan hit live across the fault.
    let p4 = core.allocate(AllocRequest::new(mib(4))).unwrap();
    let p6 = core.allocate(AllocRequest::new(mib(6))).unwrap();
    core.deallocate(p4.id).unwrap();
    core.deallocate(p6.id).unwrap();
    let held = core.allocate(AllocRequest::new(mib(1))).unwrap();
    let hits_before = core.counters().plan_hits;
    let stats_before = core.stats();

    // Arm: the next map call is the residue stitch's, inside the commit.
    driver.set_fault_plan(FaultPlan::new().fail_nth(FaultOp::Map, 1));
    let err = core.allocate(AllocRequest::new(mib(10))).unwrap_err();
    assert!(
        matches!(err, AllocError::DriverFault { .. }),
        "residue stitch fault must surface with its source chain, got {err:?}"
    );
    assert!(driver.stats().injected_faults > 0, "schedule never fired");
    driver.clear_fault_plan();

    // Plan tables untouched: identical placements, held hit still live,
    // no hit-path traffic counted, internal invariants clean.
    assert_eq!(core.plan().unwrap(), plan_before, "fault mutated the plan");
    assert_eq!(core.counters().plan_hits, hits_before);
    core.validate().unwrap();
    let journal = core.fault_journal();
    assert!(journal.is_leak_free(), "stitch unwind leaked: {journal:?}");
    assert_eq!(journal.failed_ops, 1, "exactly the faulted stitch");
    let s = core.stats();
    assert_eq!(s.active_bytes, stats_before.active_bytes, "no ghost bytes");
    assert_eq!(s.alloc_count, stats_before.alloc_count);

    // Same request, fault cleared: the fallback stitch commits.
    let c = core.allocate(AllocRequest::new(mib(10))).unwrap();
    assert!(c.size >= mib(10));
    core.deallocate(c.id).unwrap();
    core.deallocate(held.id).unwrap();
    core.validate().unwrap();
    core.release_cached();
    assert_eq!(core.stats().active_bytes, 0);
    assert_eq!(driver.phys_in_use(), 0, "device not quiescent");
    assert_eq!(driver.outstanding_events(), 0, "leaked driver events");
}
