//! Trace-replay differential harness for the STAlloc-style `PlannedCore`
//! (record → plan → serve) against the reactive `GmLakeAllocator` oracle.
//!
//! The planned core must be *transparent*: over the existing trace corpus
//! (fig05-style model × strategy configs, multi-stream, OOM-edge) every
//! per-op outcome must agree with the oracle's, the caller-visible
//! `MemStats` must reconcile bit-exactly at quiescence, and on
//! steady-state traces the plan must never reserve more than the reactive
//! core did (that is the point of planning: the arena is sized to the
//! measured transient peak, not to reactive stitching decisions).
//!
//! Proptests pin the planner invariants independently of any workload:
//! no two placements overlap in `(space × time)`, every `offset + size`
//! fits the planned capacity, plans replay deterministically, and the
//! `gmlake-plan/v1` JSON round-trips placements identically (the recorder
//! round-trip satellite).

use proptest::prelude::*;

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;
use gmlake_planning::{LifetimeInterval, MemoryPlan, PlannedConfig, PlannedCore};
use gmlake_workload::{ReplayOptions, Replayer, TraceGenerator};

mod common;
use common::lockstep_replay;

/// The fig05-style steady-state corpus: small enough for debug builds,
/// real enough to exercise every event class the generator emits
/// (activations, gather buckets, workspace churn, optimizer bursts).
fn corpus() -> Vec<(&'static str, TrainConfig)> {
    vec![
        (
            "opt-1.3b/LR",
            TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
                .with_seq_len(256)
                .with_batch(2)
                .with_iterations(5),
        ),
        (
            "gpt2/LRO",
            TrainConfig::new(ModelSpec::gpt2(), StrategySet::LRO)
                .with_seq_len(256)
                .with_batch(2)
                .with_iterations(5),
        ),
        (
            "opt-1.3b/RO/2-streams",
            TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::RO)
                .with_seq_len(128)
                .with_batch(2)
                .with_iterations(5)
                .with_streams(2),
        ),
    ]
}

fn planned_core(capacity: u64) -> (PlannedCore, CudaDriver) {
    let driver = CudaDriver::new(DeviceConfig::a100_80g().with_capacity(capacity));
    let core = PlannedCore::new(
        driver.clone(),
        PlannedConfig {
            gmlake: GmLakeConfig::default(),
            ..PlannedConfig::default()
        },
    );
    (core, driver)
}

fn oracle_core(capacity: u64) -> (GmLakeAllocator, CudaDriver) {
    let driver = CudaDriver::new(DeviceConfig::a100_80g().with_capacity(capacity));
    let core = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    (core, driver)
}

/// Per-op outcome agreement + bit-exact quiescent `MemStats` + planned
/// peak-reserved ≤ oracle, over every corpus trace.
#[test]
fn planned_matches_oracle_over_steady_state_corpus() {
    for (label, cfg) in corpus() {
        let trace = TraceGenerator::new(cfg).generate();
        trace.validate().unwrap_or_else(|e| panic!("{label}: {e}"));

        let (mut planned, planned_driver) = planned_core(gib(80));
        let (mut oracle, oracle_driver) = oracle_core(gib(80));
        let report = lockstep_replay(&trace, &mut planned, &mut oracle, false);
        assert_eq!(report.subject_wins, 0, "{label}: ample capacity, no OOM");
        assert_eq!(report.agreed_ooms, 0, "{label}: ample capacity, no OOM");

        planned
            .validate()
            .unwrap_or_else(|e| panic!("{label}: {e}"));

        // The plan must actually have carried the steady state: after the
        // warm-up iteration, ≥ 95% of alloc traffic is served in O(1).
        let counters = planned.counters();
        assert!(counters.plans_built >= 1, "{label}: no plan installed");
        assert!(
            counters.hit_rate() >= 0.95,
            "{label}: plan hit rate {:.3} below 0.95 ({counters:?})",
            counters.hit_rate()
        );

        // Planning must never cost memory: peak reserved ≤ reactive.
        assert!(
            report.subject_peak_reserved <= report.oracle_peak_reserved,
            "{label}: planned peak {} > oracle peak {}",
            report.subject_peak_reserved,
            report.oracle_peak_reserved
        );

        // Quiescence: both sides surrender their caches (and the planned
        // side its arena); every caller-visible counter reconciles
        // bit-exactly and both simulated devices are fully released.
        planned.release_cached();
        oracle.release_cached();
        let p = planned.stats();
        let o = oracle.stats();
        assert_eq!(p.active_bytes, 0, "{label}");
        assert_eq!(p.active_bytes, o.active_bytes, "{label}: active");
        assert_eq!(p.reserved_bytes, o.reserved_bytes, "{label}: reserved");
        assert_eq!(p.alloc_count, o.alloc_count, "{label}: allocs");
        assert_eq!(p.free_count, o.free_count, "{label}: frees");
        assert_eq!(p.oom_count, o.oom_count, "{label}: ooms");
        assert_eq!(
            p.requested_bytes_total, o.requested_bytes_total,
            "{label}: requested"
        );
        assert_eq!(planned_driver.phys_in_use(), 0, "{label}: planned device");
        assert_eq!(oracle_driver.phys_in_use(), 0, "{label}: oracle device");
        assert!(planned.fault_journal_stats().is_leak_free(), "{label}");
    }
}

/// OOM-edge: on a device sized to ~90% of the workload's reactive peak,
/// the planned core must never fail an allocation the oracle served —
/// planning may only *reduce* OOM pressure — and both sides must survive
/// skip-on-OOM replay with clean invariants.
#[test]
fn planned_is_never_worse_than_oracle_at_the_oom_edge() {
    let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_seq_len(256)
        .with_batch(2)
        .with_iterations(4);
    let trace = TraceGenerator::new(cfg.clone()).generate();

    // Probe the reactive peak on an unconstrained device, then squeeze.
    let (mut probe, _d) = oracle_core(gib(80));
    let probe_report = Replayer::new(_d.clone())
        .with_options(ReplayOptions {
            stop_on_oom: false,
            ..ReplayOptions::default()
        })
        .replay(&mut probe, &trace, &cfg);
    drop(probe);
    let squeeze = probe_report.peak_reserved * 9 / 10;

    let opts = ReplayOptions {
        stop_on_oom: false,
        ..ReplayOptions::default()
    };
    let (mut planned, planned_driver) = planned_core(squeeze);
    let planned_report = Replayer::new(planned_driver.clone())
        .with_options(opts.clone())
        .replay(&mut planned, &trace, &cfg);
    let (mut oracle, oracle_driver) = oracle_core(squeeze);
    let oracle_report = Replayer::new(oracle_driver.clone())
        .with_options(opts)
        .replay(&mut oracle, &trace, &cfg);

    assert!(
        planned_report.skipped_allocs <= oracle_report.skipped_allocs,
        "planned skipped {} allocs, oracle only {}",
        planned_report.skipped_allocs,
        oracle_report.skipped_allocs
    );
    assert!(planned_report.peak_reserved <= squeeze);
    planned.validate().unwrap();
    oracle.validate().unwrap();
    assert!(planned.fault_journal_stats().is_leak_free());
}

/// The planned core is a drop-in `AllocatorCore`: behind the sharded
/// `DeviceAllocator` front-end and the `PoolService` runtime, unchanged.
#[test]
fn planned_core_plugs_into_device_allocator_and_pool_service() {
    let (core, _driver) = planned_core(gib(4));
    let service = PoolService::new();
    service.register(DeviceId(0), Box::new(core)).unwrap();
    let pool = service.handle(DeviceId(0)).unwrap();

    // Two "iterations" of mixed small/large traffic through every layer.
    for _ in 0..2 {
        let mut live = Vec::new();
        for i in 0..24u64 {
            let size = if i % 3 == 0 {
                mib(4)
            } else {
                kib(64) + i * 256
            };
            let a = pool
                .alloc_on_stream(AllocRequest::new(size), StreamId((i % 2) as u32))
                .unwrap();
            assert!(a.size >= size);
            live.push((a.id, StreamId((i % 2) as u32)));
        }
        for (id, stream) in live {
            pool.free_on_stream(id, stream).unwrap();
        }
        pool.iteration_boundary();
    }
    let stats = pool.stats();
    assert_eq!(stats.active_bytes, 0);
    assert_eq!(stats.alloc_count, stats.free_count);
}

/// Plan replay is deterministic end to end: two fresh planned cores fed
/// the same trace install byte-identical plans and report identical
/// counters and stats.
#[test]
fn plan_replay_is_deterministic_across_runs() {
    let cfg = TrainConfig::new(ModelSpec::gpt2(), StrategySet::LR)
        .with_seq_len(128)
        .with_batch(1)
        .with_iterations(3);
    let trace = TraceGenerator::new(cfg.clone()).generate();

    let mut plans = Vec::new();
    let mut stats = Vec::new();
    for _ in 0..2 {
        let (mut planned, driver) = planned_core(gib(80));
        let _ = Replayer::new(driver)
            .with_options(ReplayOptions::default())
            .replay(&mut planned, &trace, &cfg);
        plans.push(planned.plan().expect("plan installed"));
        stats.push((planned.stats(), planned.counters()));
    }
    assert_eq!(plans[0], plans[1], "plans diverged across identical runs");
    assert_eq!(stats[0], stats[1], "stats diverged across identical runs");
}

// ---------------------------------------------------------------------------
// Planner invariant proptests
// ---------------------------------------------------------------------------

/// Random lifetime programs: tuples of (start, duration, size, stream)
/// with sizes crossing the 2 MiB granularity boundary.
fn intervals_strategy() -> impl Strategy<Value = Vec<LifetimeInterval>> {
    prop::collection::vec(
        ((0u64..400), (1u64..120), (1u64..(4 << 20)), (0u32..3)),
        1..60,
    )
    .prop_map(|tuples| {
        tuples
            .into_iter()
            .map(|(start, dur, size, stream)| LifetimeInterval {
                alloc_tick: start,
                free_tick: start + dur,
                size,
                stream,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Planner invariants: placements never overlap in space × time,
    /// every slot fits the planned capacity, capacity never exceeds the
    /// sum of sizes (packing can only share, not pad), and planning the
    /// same intervals twice yields the identical plan.
    #[test]
    fn planner_invariants_hold_on_random_interval_programs(
        intervals in intervals_strategy()
    ) {
        let plan = MemoryPlan::build(&intervals);
        prop_assert!(plan.validate().is_ok(), "{:?}", plan.validate());
        prop_assert_eq!(plan.slots.len(), intervals.len());
        for s in &plan.slots {
            prop_assert!(s.offset + s.size <= plan.capacity);
        }
        prop_assert!(plan.capacity <= plan.total_slot_bytes());
        let again = MemoryPlan::build(&intervals);
        prop_assert_eq!(plan, again, "planner is not deterministic");
    }

    /// Recorder round-trip (the profiler's export format): drive a random
    /// alloc/free program through a recording `PlannedCore`, install the
    /// plan, serialize to `gmlake-plan/v1` JSON, parse it back — the
    /// placements must be identical.
    #[test]
    fn recorded_plan_round_trips_through_json(
        ops in prop::collection::vec(((1u64..(1 << 20)), (0u32..2), any::<bool>()), 8..40)
    ) {
        let (mut core, _driver) = planned_core(gib(4));
        let mut live: Vec<AllocationId> = Vec::new();
        for (size, stream, free_first) in ops {
            if free_first && !live.is_empty() {
                let id = live.swap_remove(size as usize % live.len());
                core.free_on_stream(id, StreamId(stream)).unwrap();
            }
            let a = core
                .alloc_on_stream(AllocRequest::new(size), StreamId(stream))
                .unwrap();
            live.push(a.id);
        }
        for id in live.drain(..) {
            core.deallocate(id).unwrap();
        }
        core.iteration_boundary();
        let plan = core.plan().expect("every op pair was transient");
        plan.validate().unwrap();
        let json = plan.to_json();
        let back = MemoryPlan::from_json(&json).unwrap();
        prop_assert_eq!(plan, back, "JSON round-trip changed the plan");
        core.validate().unwrap();
    }
}
