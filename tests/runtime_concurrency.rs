//! Cross-crate concurrency tests of the runtime subsystem: many threads on
//! one pool, whole fleets of ranks replaying through the service, and the
//! defrag scheduler's end-to-end effect on reserved memory.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;
use gmlake_runtime::{BackgroundDefragger, DefragScheduler, DeviceId, PoolService};
use gmlake_workload::{ConcurrentReplayer, RankSpec};

fn a100() -> CudaDriver {
    CudaDriver::new(DeviceConfig::a100_80g())
}

/// ≥4 threads allocate and free through clones of ONE `PoolHandle` without
/// deadlock, without losing allocations, and with exact accounting.
#[test]
fn stress_many_threads_one_pool() {
    const THREADS: u64 = 8;
    const OPS: u64 = 300;
    let service = PoolService::new();
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    service
        .register(
            DeviceId(0),
            Box::new(GmLakeAllocator::new(
                driver.clone(),
                GmLakeConfig::default().with_frag_limit(mib(2)),
            )),
        )
        .unwrap();

    let total_allocs = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = service.handle(DeviceId(0)).unwrap();
            let total_allocs = &total_allocs;
            s.spawn(move || {
                // Deterministic per-thread op mix; sizes straddle the
                // small/large threshold so both pool paths run.
                let mut live: Vec<AllocationId> = Vec::new();
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let size = 512 + x % mib(4);
                    match pool.allocate(AllocRequest::new(size)) {
                        Ok(a) => {
                            assert!(a.size >= size, "undersized block");
                            total_allocs.fetch_add(1, Ordering::Relaxed);
                            live.push(a.id);
                        }
                        Err(AllocError::OutOfMemory { .. }) => {}
                        Err(e) => panic!("unexpected allocator error: {e}"),
                    }
                    if live.len() > 4 {
                        let id = live.swap_remove((x % live.len() as u64) as usize);
                        pool.deallocate(id).unwrap();
                    }
                }
                for id in live {
                    pool.deallocate(id).unwrap();
                }
            });
        }
    });

    let stats = service.stats(DeviceId(0)).unwrap();
    assert_eq!(
        stats.alloc_count,
        total_allocs.load(Ordering::Relaxed),
        "every successful allocation was counted exactly once"
    );
    assert_eq!(stats.alloc_count, stats.free_count, "no allocation lost");
    assert_eq!(stats.active_bytes, 0);
    // The allocator's own invariants survived the contention.
    service
        .handle(DeviceId(0))
        .unwrap()
        .with_allocator(|a| a.stats());
    assert_eq!(driver.phys_in_use(), stats.reserved_bytes);
}

/// A ≥4-device, ≥4-thread scale-out through the service completes with
/// per-rank reports — the acceptance scenario of the runtime subsystem.
#[test]
fn scaleout_four_ranks_four_threads_with_reports() {
    let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_seq_len(256)
        .with_batch(2)
        .with_iterations(3)
        .with_gpus(4);
    let service = PoolService::new();
    let ranks: Vec<RankSpec> = (0..4)
        .map(|rank| {
            let driver = a100();
            service
                .register(
                    DeviceId(rank),
                    Box::new(GmLakeAllocator::new(
                        driver.clone(),
                        GmLakeConfig::default(),
                    )),
                )
                .unwrap();
            RankSpec::new(DeviceId(rank), driver, cfg.clone())
        })
        .collect();
    let report = ConcurrentReplayer::new(service.clone())
        .replay_ranks(ranks)
        .unwrap();
    assert_eq!(report.ranks.len(), 4);
    assert!(report.all_completed());
    for rank in &report.ranks {
        assert_eq!(rank.report.iterations_completed, 3);
        assert!(rank.report.peak_reserved > 0);
        assert!(rank.report.throughput > 0.0);
    }
    // Mirrored ranks agree exactly (determinism through the shared-pool
    // path), and the service agrees with the reports.
    let peaks: Vec<u64> = report
        .ranks
        .iter()
        .map(|r| r.report.peak_reserved)
        .collect();
    assert!(peaks.windows(2).all(|w| w[0] == w[1]), "{peaks:?}");
    let by_device: HashMap<DeviceId, u64> = report
        .ranks
        .iter()
        .map(|r| (r.device, r.report.final_reserved))
        .collect();
    for device in service.devices() {
        assert_eq!(
            service.stats(device).unwrap().reserved_bytes,
            by_device[&device]
        );
    }
}

/// The defrag scheduler demonstrably reduces reserved memory versus a
/// no-defrag run of the identical fleet.
#[test]
fn defrag_scheduler_reduces_reserved_memory() {
    let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_seq_len(256)
        .with_batch(2)
        .with_iterations(4);
    let run = |scheduler: Option<DefragScheduler>| {
        let service = match scheduler {
            Some(s) => PoolService::with_scheduler(s),
            None => PoolService::new(),
        };
        let ranks: Vec<RankSpec> = (0..2)
            .map(|rank| {
                let driver = a100();
                service
                    .register(
                        DeviceId(rank),
                        Box::new(CachingAllocator::new(driver.clone())),
                    )
                    .unwrap();
                RankSpec::new(DeviceId(rank), driver, cfg.clone())
            })
            .collect();
        let report = ConcurrentReplayer::new(service.clone())
            .replay_ranks(ranks)
            .unwrap();
        (service, report)
    };

    let (_, plain) = run(None);
    let (supervised_service, supervised) = run(Some(DefragScheduler::periodic(2)));
    assert!(plain.all_completed() && supervised.all_completed());
    assert!(
        supervised.total_final_reserved() < plain.total_final_reserved(),
        "supervised fleet must end leaner: {} vs {}",
        supervised.total_final_reserved(),
        plain.total_final_reserved()
    );
    let sched = supervised_service.scheduler().unwrap().stats();
    assert!(sched.compactions > 0, "the periodic policy actually fired");
    assert!(sched.bytes_reclaimed > 0);
}

/// The background sweeper coexists with a live concurrent replay: no
/// deadlock between sweep-side and handle-side locking, and the run's
/// results stay correct.
#[test]
fn background_defragger_runs_alongside_replay() {
    let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_seq_len(256)
        .with_batch(2)
        .with_iterations(3);
    let service = PoolService::with_scheduler(DefragScheduler::frag_threshold(0.6, mib(64)));
    let ranks: Vec<RankSpec> = (0..2)
        .map(|rank| {
            let driver = a100();
            service
                .register(
                    DeviceId(rank),
                    Box::new(CachingAllocator::new(driver.clone())),
                )
                .unwrap();
            RankSpec::new(DeviceId(rank), driver, cfg.clone())
        })
        .collect();
    let defragger =
        BackgroundDefragger::spawn(service.clone(), std::time::Duration::from_millis(1));
    let report = ConcurrentReplayer::new(service.clone())
        .replay_ranks(ranks)
        .unwrap();
    let sweeps = defragger.stop();
    assert!(report.all_completed());
    assert!(sweeps > 0, "the sweeper actually ran during the replay");
}

/// A panic inside a closure holding the pool's allocator lock must not
/// wedge the pool for everyone else. The workspace's `parking_lot` shim
/// recovers poisoned `std::sync` locks instead of propagating the poison
/// as an error, so surviving threads keep allocating and the allocator's
/// invariants still hold (see `docs/fault-model.md` — the panicking
/// closure must not have left a *logical* half-update behind, which the
/// transactional core guarantees for its own operations).
#[test]
fn pool_survives_a_panicking_lock_holder() {
    let service = PoolService::new();
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    let pool = service
        .register(
            DeviceId(0),
            Box::new(GmLakeAllocator::new(
                driver.clone(),
                GmLakeConfig::default().with_frag_limit(mib(2)),
            )),
        )
        .unwrap();

    let warm = pool.allocate(AllocRequest::new(mib(8))).unwrap();

    // Panic while holding the pool mutex (with_allocator locks the core).
    let crashed = std::thread::scope(|s| {
        let pool = pool.clone();
        s.spawn(move || {
            pool.with_allocator(|_core| panic!("simulated user-callback crash"));
        })
        .join()
    });
    assert!(crashed.is_err(), "the panic must reach join()");

    // The lock recovered: every other user proceeds normally.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let pool = pool.clone();
            s.spawn(move || {
                for _ in 0..16 {
                    let a = pool.allocate(AllocRequest::new(mib(1 + t))).unwrap();
                    pool.deallocate(a.id).unwrap();
                }
            });
        }
    });
    pool.deallocate(warm.id).unwrap();
    assert_eq!(pool.stats().active_bytes, 0);
    pool.with_allocator(|core| {
        let lake = core
            .as_any_mut()
            .and_then(|a| a.downcast_mut::<GmLakeAllocator>())
            .expect("gmlake core");
        lake.validate().unwrap();
    });
}
