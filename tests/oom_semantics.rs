//! Out-of-memory semantics across allocators: failure is reported (never a
//! panic), state stays consistent, and GMLake extends the feasible envelope
//! exactly where the paper says it does.

use gmlake::prelude::*;
use gmlake_alloc_api::AllocTag;
use gmlake_core::GmLakeConfig;
use gmlake_workload::{ReplayOutcome, Trace, TraceEvent};

/// Builds the paper's Figure 1 request stream as a replayable trace:
/// interleaved allocations whose frees leave plenty of total memory but no
/// contiguous block for the final large request.
fn figure1_trace(final_request: u64) -> Trace {
    let mut t = Trace::new("figure-1");
    let alloc = |key, size| TraceEvent::Alloc {
        key,
        size,
        tag: AllocTag::Unspecified,
        stream: gmlake_alloc_api::StreamId::DEFAULT,
    };
    let free = |key| TraceEvent::Free {
        key,
        stream: gmlake_alloc_api::StreamId::DEFAULT,
    };
    t.events = vec![
        TraceEvent::IterBegin { index: 0 },
        alloc(1, mib(6)),
        alloc(2, mib(6)),
        alloc(3, mib(8)),
        alloc(4, mib(6)),
        free(1),
        free(3),
        alloc(5, final_request),
        free(5),
        free(2),
        free(4),
        TraceEvent::IterEnd { index: 0 },
    ];
    t.validate().unwrap();
    t
}

fn tiny_device() -> CudaDriver {
    CudaDriver::new(
        DeviceConfig::small_test()
            .with_capacity(mib(40))
            .with_backing(false),
    )
}

#[test]
fn baseline_ooms_where_gmlake_stitches() {
    let trace = figure1_trace(mib(16));

    let d1 = tiny_device();
    let mut baseline = CachingAllocator::new(d1.clone());
    let r_base = Replayer::new(d1).replay_with_samples(&mut baseline, &trace, 1);
    assert!(
        matches!(r_base.outcome, ReplayOutcome::Oom { .. }),
        "28 MiB free in fragments cannot serve 16 MiB contiguously"
    );

    let d2 = tiny_device();
    let mut lake =
        GmLakeAllocator::new(d2.clone(), GmLakeConfig::default().with_frag_limit(mib(2)));
    let r_lake = Replayer::new(d2.clone()).replay_with_samples(&mut lake, &trace, 1);
    assert!(r_lake.outcome.is_completed(), "stitching serves 16 MiB");
    assert_eq!(d2.phys_in_use(), lake.stats().reserved_bytes);
}

#[test]
fn oom_failure_is_clean_and_recoverable() {
    let driver = tiny_device();
    let mut lake = GmLakeAllocator::new(
        driver.clone(),
        GmLakeConfig::default().with_frag_limit(mib(2)),
    );
    let a = lake.allocate(AllocRequest::new(mib(30))).unwrap();
    let err = lake.allocate(AllocRequest::new(mib(20))).unwrap_err();
    assert!(matches!(err, AllocError::OutOfMemory { .. }));
    lake.validate().unwrap();
    // The allocator is fully usable after the failure.
    let b = lake.allocate(AllocRequest::new(mib(10))).unwrap();
    lake.deallocate(a.id).unwrap();
    lake.deallocate(b.id).unwrap();
    lake.validate().unwrap();
}

#[test]
fn gmlake_oom_releases_cache_before_failing() {
    let driver = tiny_device();
    let mut lake = GmLakeAllocator::new(
        driver.clone(),
        GmLakeConfig::default().with_frag_limit(mib(2)),
    );
    // Fill the device with cached (inactive) blocks of awkward sizes.
    let ids: Vec<_> = (0..5)
        .map(|_| lake.allocate(AllocRequest::new(mib(8))).unwrap().id)
        .collect();
    for id in ids {
        lake.deallocate(id).unwrap();
    }
    assert_eq!(driver.phys_in_use(), mib(40));
    // 38 MiB > any stitchable combination? No: stitching covers it (5×8=40).
    let big = lake.allocate(AllocRequest::new(mib(38))).unwrap();
    assert_eq!(driver.phys_in_use(), mib(40), "served from cache");
    lake.deallocate(big.id).unwrap();
    // 39 MiB requires 40 MiB of chunks — still fine. But with one block
    // held, a full-size request must fail *after* the fallback released
    // everything releasable.
    let hold = lake.allocate(AllocRequest::new(mib(8))).unwrap();
    let err = lake.allocate(AllocRequest::new(mib(36))).unwrap_err();
    assert!(matches!(err, AllocError::OutOfMemory { .. }));
    // The fallback reclaimed the idle cache: only the held allocation's
    // memory remains on the device.
    assert_eq!(driver.phys_in_use(), mib(8));
    lake.deallocate(hold.id).unwrap();
    lake.validate().unwrap();
}

#[test]
fn skip_mode_reports_every_failed_allocation() {
    let trace = figure1_trace(mib(16));
    let d = tiny_device();
    let mut baseline = CachingAllocator::new(d.clone());
    let opts = gmlake_workload::ReplayOptions {
        stop_on_oom: false,
        ..Default::default()
    };
    let r = Replayer::new(d)
        .with_options(opts)
        .replay_with_samples(&mut baseline, &trace, 1);
    assert!(r.outcome.is_completed());
    assert_eq!(r.skipped_allocs, 1);
    assert_eq!(baseline.stats().active_bytes, 0, "the rest completed");
}

#[test]
fn native_allocator_never_fragments() {
    // The native path trades latency for zero fragmentation: the Figure 1
    // stream succeeds because cudaFree really returns memory.
    let trace = figure1_trace(mib(16));
    let d = tiny_device();
    let mut native = NativeAllocator::new(d.clone());
    let r = Replayer::new(d.clone()).replay_with_samples(&mut native, &trace, 1);
    assert!(r.outcome.is_completed());
    assert!((r.utilization() - 1.0).abs() < 1e-9);
    assert_eq!(d.phys_in_use(), 0);
}
