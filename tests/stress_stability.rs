//! Long-horizon stability: over many iterations, reserved memory must
//! plateau (no leak-like growth), GMLake must converge, and its steady-state
//! allocator overhead must be negligible — the combination of claims behind
//! the paper's Figure 14. A final test pins the behaviour on a
//! slow-converging corner workload: pool structures stay bounded by the
//! `StitchFree` eviction cap even when exact-match convergence is slow.

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;
use gmlake_workload::{ReplayOptions, TraceGenerator};

/// The paper-regime workload: long sequences, LoRA + recomputation.
fn workload(iterations: u32) -> TrainConfig {
    TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LR)
        .with_batch(8)
        .with_iterations(iterations)
}

#[test]
fn reserved_memory_plateaus_for_both_allocators() {
    let cfg = workload(16);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let opts = ReplayOptions {
        record_series: true,
        series_stride: 16,
        ..ReplayOptions::default()
    };

    for which in ["caching", "gmlake"] {
        let driver = CudaDriver::new(DeviceConfig::a100_80g());
        let replayer = Replayer::new(driver.clone()).with_options(opts.clone());
        let report = match which {
            "caching" => {
                let mut a = CachingAllocator::new(driver.clone());
                replayer.replay(&mut a, &trace, &cfg)
            }
            _ => {
                let mut a = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
                replayer.replay(&mut a, &trace, &cfg)
            }
        };
        assert!(report.outcome.is_completed(), "{which}");
        // Reserved memory in the last quarter of the run must not exceed the
        // halfway value by more than 2%: growth stops after warm-up.
        let series = &report.series;
        let mid = series[series.len() / 2].reserved;
        let tail_max = series[series.len() * 3 / 4..]
            .iter()
            .map(|s| s.reserved)
            .max()
            .unwrap();
        assert!(
            tail_max as f64 <= mid as f64 * 1.02,
            "{which}: reserved still growing ({tail_max} > {mid})"
        );
    }
}

#[test]
fn gmlake_steady_state_overhead_is_negligible() {
    let cfg = workload(10);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    let report = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
    assert!(report.outcome.is_completed());
    // Adaptation decays to a handful of residual transitions per iteration
    // (the paper's "only S1" is the idealized limit of this curve).
    let history = lake.non_exact_history();
    assert!(
        *history.last().unwrap() <= 4 && history.last().unwrap() * 50 <= history[0],
        "{history:?}"
    );

    // Fully warm the pools (residual restitching settles over a couple of
    // replays), then measure a steady-state replay: the driver must see
    // almost no physical-allocation traffic.
    for _ in 0..2 {
        let r = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
        assert!(r.outcome.is_completed());
    }
    let before = driver.stats();
    let reserved_before = lake.reserved_physical();
    let report2 = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
    let after = driver.stats();
    assert!(report2.outcome.is_completed());
    // The residual restitch floor may create a few chunks; physical growth
    // across a whole warmed replay must stay under 2%.
    let grown = lake.reserved_physical() - reserved_before;
    assert!(
        grown * 50 <= reserved_before,
        "steady state grew physical memory by {grown} bytes"
    );
    assert!(
        after.create.calls - before.create.calls <= 128,
        "steady state churned {} cuMemCreate calls",
        after.create.calls - before.create.calls
    );
}

#[test]
fn repeated_replays_do_not_grow_pools() {
    let cfg = workload(4);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    let mut counts = Vec::new();
    for _ in 0..4 {
        let r = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
        assert!(r.outcome.is_completed());
        lake.validate().unwrap();
        counts.push((lake.pblock_count(), lake.sblock_count()));
    }
    // pBlock count must be fully stable; sBlock structures may creep by the
    // residual restitch floor (a few per iteration), never more.
    assert_eq!(counts[2].0, counts[3].0, "physical pool grew: {counts:?}");
    assert!(
        counts[3].1 - counts[2].1 <= 16,
        "sPool growing beyond the residual floor: {counts:?}"
    );
}

#[test]
fn slow_converging_corner_stays_bounded_by_stitchfree() {
    // Short sequences at tiny batch put hundreds of near-identical sizes in
    // a narrow band; exact-match convergence is slow there. StitchFree must
    // keep the sPool bounded regardless.
    let cfg = TrainConfig::new(ModelSpec::opt_1_3b(), StrategySet::LRO)
        .with_seq_len(512)
        .with_batch(4)
        .with_iterations(6);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(
        driver.clone(),
        GmLakeConfig::default().with_max_sblocks(256),
    );
    for _ in 0..3 {
        let r = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
        assert!(r.outcome.is_completed());
        lake.validate().unwrap();
        // Eviction can only reclaim fully-inactive structures, so the pool
        // may overshoot the cap by the busy/part-active fraction — but it
        // must stay within a small multiple of the cap, not grow without
        // bound (6 iterations x 3 replays would otherwise stack thousands).
        assert!(
            lake.sblock_count() <= 2 * 256,
            "sPool exceeded cap: {}",
            lake.sblock_count()
        );
    }
    assert!(lake.state_counters().evictions > 0, "StitchFree engaged");
    // Fragmentation stays controlled even without full convergence.
    let s = lake.stats();
    assert!(s.utilization() > 0.85, "utilization {:.3}", s.utilization());
}
