//! Differential-oracle property tests for the stream-aware, event-guarded
//! `DeviceAllocator` front-end: random multi-stream alloc/free/tick
//! programs are replayed through the sharded, stream-partitioned front-end
//! AND through a single-mutex `AllocatorCore` oracle, and the two must
//! agree
//!
//! * on the outcome (success / `OutOfMemory`) of **every** allocation — the
//!   front-end's caches, stream banks, pending event rings, and
//!   flush-and-retry must be invisible to feasibility (the transparency
//!   GMLake promises);
//! * on `stats()` at quiescence — after the program ends and the caches are
//!   flushed, the reconciled counters must be bit-identical to the oracle's.
//!
//! **How the oracle models event completion:** instantaneously. The mirror
//! frees every block the moment `free_on_stream` is called, which is the
//! limit case of an event that completes at record time. The front-end runs
//! over a `ManualEvents` source whose completion is advanced only by the
//! seed-chosen `Tick` ops, so a program's pending rings hold blocks for
//! arbitrary stretches of the program — and the property says exactly that
//! this is invisible: wherever the ticks land, every caller-visible
//! counter and every allocation outcome must match the instant-completion
//! oracle. (OOM included: the flush-and-retry synchronizes pending events,
//! so feasibility never depends on tick placement.)
//!
//! Program sizes are powers of two, so the front-end's size-class rounding
//! is the identity and any divergence is a real routing/accounting bug, not
//! a rounding artifact. Sizes range up to 8 MiB — well above the 2 MiB
//! stitch threshold — so programs mix small-shard traffic with the PR 9
//! per-stream *large-bank* route (exact-size reuse, large event guard,
//! optimistic commit), and the oracle equivalence covers both id spaces and
//! their interleavings. (Large reuse is exact-requested-size by design,
//! so the oracle's after-every-op `active_bytes`/`requested_bytes_total`
//! assertions stay bit-exact on the large path too.)

use std::sync::Arc;

use proptest::prelude::*;

use gmlake::prelude::*;
use gmlake_alloc_api::{DeviceAllocatorConfig, ManualEvents};

mod common;
use common::{MirrorCore, MutexOracle};

/// Number of logical streams the random programs run over.
const STREAMS: u32 = 4;

/// One step of a random multi-stream allocator program.
#[derive(Debug, Clone)]
enum Op {
    /// Allocate `1 << size_log2` bytes on stream `stream % STREAMS`.
    Alloc { size_log2: u32, stream: u32 },
    /// Free the n-th (mod live count) live allocation from stream
    /// `stream % STREAMS` — when that is not the allocating stream, this is
    /// a cross-stream free exercising the event-guarded reuse rule.
    Free { nth: usize, stream: u32 },
    /// Complete every event recorded so far and sweep the pending rings
    /// (front-end only; the oracle completes events instantaneously, so
    /// tick placement must be caller-invisible).
    Tick,
    /// Return every cached block to the core (front-end only; the oracle
    /// caches nothing, so this must be caller-invisible).
    Flush,
    /// Flush one stream's bank only (front-end only, same invisibility).
    FlushStream { stream: u32 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        8 => ((9u32..24), (0u32..STREAMS)).prop_map(|(size_log2, stream)| Op::Alloc {
            size_log2,
            stream,
        }),
        7 => (any::<usize>(), (0u32..STREAMS)).prop_map(|(nth, stream)| Op::Free { nth, stream }),
        2 => Just(Op::Tick),
        1 => Just(Op::Flush),
        1 => (0u32..STREAMS).prop_map(|stream| Op::FlushStream { stream }),
    ]
}

/// Replays `ops` through both allocators, asserting outcome agreement after
/// every step and stats agreement at quiescence. `capacity == 0` means
/// unbounded (no OOM arm).
fn run_differential(ops: &[Op], capacity: u64) {
    let events = Arc::new(ManualEvents::new());
    let pool = DeviceAllocator::with_config_and_events(
        MirrorCore::bounded(capacity),
        DeviceAllocatorConfig::default()
            .with_streams(STREAMS as usize)
            // Small caps: exercise free-list overflow returns AND
            // pending-ring overflow (the cross-stream fallback, which
            // synchronizes its event before the core sees the block) on
            // both the small shards and the large banks.
            .with_max_cached_per_class(4)
            .with_max_cached_large_per_bank(2)
            .with_pending_ring_cap(4),
        events.clone(),
    );
    let oracle = MutexOracle::bounded(capacity);

    // (front id, oracle id, allocating stream) per live tensor.
    let mut live: Vec<(AllocationId, AllocationId, StreamId)> = Vec::new();
    for (i, op) in ops.iter().enumerate() {
        match *op {
            Op::Alloc { size_log2, stream } => {
                let size = 1u64 << size_log2;
                let stream = StreamId(stream % STREAMS);
                let front = pool.alloc_on_stream(AllocRequest::new(size), stream);
                let orac = oracle.alloc(size);
                match (front, orac) {
                    (Ok(f), Ok(o)) => {
                        prop_assert!(f.size >= size);
                        live.push((f.id, o.id, stream));
                    }
                    (Err(AllocError::OutOfMemory { requested, .. }), Err(AllocError::OutOfMemory { requested: oreq, .. })) => {
                        prop_assert_eq!(requested, oreq, "op {}: same failing request", i);
                    }
                    (f, o) => panic!(
                        "op {i}: outcome divergence on {size}B/{stream}: front {f:?} vs oracle {o:?}"
                    ),
                }
            }
            Op::Free { nth, stream } => {
                if live.is_empty() {
                    continue;
                }
                let (fid, oid, _alloc_stream) = live.swap_remove(nth % live.len());
                let stream = StreamId(stream % STREAMS);
                pool.free_on_stream(fid, stream).unwrap();
                oracle.free(oid, stream).unwrap();
            }
            Op::Tick => {
                events.complete_all();
                pool.process_events();
            }
            Op::Flush => {
                pool.flush();
            }
            Op::FlushStream { stream } => {
                pool.flush_stream(StreamId(stream % STREAMS));
            }
        }
        // Mid-program the caller-visible counters already agree: active
        // bytes exclude parked blocks, and every alloc/free is counted once.
        let f = pool.stats();
        let o = oracle.stats();
        prop_assert_eq!(f.active_bytes, o.active_bytes, "op {}: active", i);
        prop_assert_eq!(f.alloc_count, o.alloc_count, "op {}: allocs", i);
        prop_assert_eq!(f.free_count, o.free_count, "op {}: frees", i);
        prop_assert_eq!(
            f.requested_bytes_total,
            o.requested_bytes_total,
            "op {}: requested",
            i
        );
    }

    // Quiescence: free the survivors on their own streams, flush, compare
    // everything (including reserved, once both sides dropped their slack).
    for (fid, oid, stream) in live.drain(..) {
        pool.free_on_stream(fid, stream).unwrap();
        oracle.free(oid, stream).unwrap();
    }
    pool.flush();
    pool.release_cached();
    oracle.0.lock().unwrap().release_cached();
    let f = pool.stats();
    let o = oracle.stats();
    prop_assert_eq!(f.active_bytes, 0);
    prop_assert_eq!(f.alloc_count, o.alloc_count);
    prop_assert_eq!(f.free_count, o.free_count);
    prop_assert_eq!(f.requested_bytes_total, o.requested_bytes_total);
    prop_assert_eq!(f.reserved_bytes, o.reserved_bytes);
    let cache = pool.cache_stats();
    prop_assert_eq!(cache.cached_blocks, 0);
    prop_assert_eq!(cache.pending_blocks, 0, "flush drained the rings");
    prop_assert_eq!(events.pending(), 0, "flush synchronized pending events");
    // A block is only ever promoted after having been parked; whatever was
    // parked but never promoted left through the flush path just verified.
    prop_assert!(cache.event_promotions <= cache.cross_stream_parked);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Bounded device: the OOM arm fires regularly, and every outcome must
    /// match the oracle's (the flush-and-retry makes the caches transparent
    /// to feasibility).
    #[test]
    fn stream_front_end_matches_single_mutex_oracle_with_oom(
        ops in prop::collection::vec(op_strategy(), 1..80)
    ) {
        // ~16 x 512 KiB (or two 4 MiB large tensors): programs regularly
        // cross it, and the largest (8 MiB) request fills it exactly.
        run_differential(&ops, 8 << 20);
    }

    /// Unbounded device: longer programs, pure routing/accounting agreement.
    #[test]
    fn stream_front_end_matches_single_mutex_oracle_unbounded(
        ops in prop::collection::vec(op_strategy(), 1..120)
    ) {
        run_differential(&ops, 0);
    }
}
