//! Cross-crate tests of the sharded `DeviceAllocator` fast path: N-thread
//! stress with exact accounting, cross-thread frees, cross-thread
//! double-free detection, and teardown hygiene on a real simulated device.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;

use gmlake::prelude::*;
use gmlake_alloc_api::DeviceAllocatorConfig;
use gmlake_core::GmLakeConfig;

fn caching_front() -> (DeviceAllocator, CudaDriver) {
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    (
        DeviceAllocator::new(CachingAllocator::new(driver.clone())),
        driver,
    )
}

/// ≥8 threads hammer one front-end with a size mix straddling the
/// small/large threshold: every successful allocation is freed exactly
/// once, nothing is lost or leaked across the shards, and the wrapped
/// core's own invariants survive.
#[test]
fn stress_eight_threads_no_allocation_lost_across_shards() {
    const THREADS: u64 = 8;
    const OPS: u64 = 400;
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    let pool = DeviceAllocator::new(GmLakeAllocator::new(
        driver.clone(),
        GmLakeConfig::default().with_frag_limit(mib(2)),
    ));

    let total_allocs = AtomicU64::new(0);
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = pool.clone();
            let total_allocs = &total_allocs;
            s.spawn(move || {
                let mut live: Vec<AllocationId> = Vec::new();
                let mut x = 0x9e3779b97f4a7c15u64.wrapping_mul(t + 1);
                for _ in 0..OPS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    // Sizes from 512 B to ~4 MiB: both the sharded fast
                    // path and the core fallback run, on many size classes.
                    let size = 512 + x % mib(4);
                    match pool.allocate(AllocRequest::new(size)) {
                        Ok(a) => {
                            assert!(a.size >= size, "undersized block");
                            total_allocs.fetch_add(1, Ordering::Relaxed);
                            live.push(a.id);
                        }
                        Err(AllocError::OutOfMemory { .. }) => {}
                        Err(e) => panic!("unexpected allocator error: {e}"),
                    }
                    if live.len() > 4 {
                        let id = live.swap_remove((x % live.len() as u64) as usize);
                        pool.deallocate(id).unwrap();
                    }
                }
                for id in live {
                    pool.deallocate(id).unwrap();
                }
            });
        }
    });

    let stats = pool.stats();
    assert_eq!(
        stats.alloc_count,
        total_allocs.load(Ordering::Relaxed),
        "every successful allocation was counted exactly once"
    );
    assert_eq!(stats.alloc_count, stats.free_count, "no allocation lost");
    assert_eq!(stats.active_bytes, 0);
    // Returning the shard caches to the core reconciles it exactly.
    pool.flush();
    pool.with_core(|core| {
        assert_eq!(core.stats().active_bytes, 0, "core agrees after flush");
    });
    // Dropping the front-end (and with it the core) returns every byte,
    // reservation, and mapping to the device: nothing leaked in a shard.
    drop(pool);
    assert!(driver.snapshot().is_quiescent(), "device fully torn down");
}

/// A block allocated on one thread and freed on another stays correctly
/// accounted, and the migrated block is reusable from the cache.
#[test]
fn alloc_on_one_thread_free_on_another() {
    let (pool, _driver) = caching_front();
    let (tx, rx) = mpsc::channel::<AllocationId>();
    std::thread::scope(|s| {
        let producer = pool.clone();
        s.spawn(move || {
            for _ in 0..200 {
                let a = producer.allocate(AllocRequest::new(kib(64))).unwrap();
                tx.send(a.id).unwrap();
            }
        });
        let consumer = pool.clone();
        s.spawn(move || {
            for id in rx {
                consumer.deallocate(id).unwrap();
            }
        });
    });
    let stats = pool.stats();
    assert_eq!(stats.alloc_count, 200);
    assert_eq!(stats.free_count, 200);
    assert_eq!(stats.active_bytes, 0);
    // The migrated blocks are sitting in the shard caches, ready for reuse.
    let before = pool.cache_stats();
    assert!(before.cached_blocks > 0, "frees landed in the cache");
    let a = pool.allocate(AllocRequest::new(kib(64))).unwrap();
    assert_eq!(pool.cache_stats().hits, before.hits + 1);
    pool.deallocate(a.id).unwrap();
}

/// Two threads race to free the same allocation: exactly one wins, the
/// other gets `UnknownAllocation`, and the accounting stays exact.
#[test]
fn cross_thread_double_free_is_detected_exactly_once() {
    let (pool, _driver) = caching_front();
    for round in 0..50 {
        let a = pool.allocate(AllocRequest::new(kib(8))).unwrap();
        let outcomes: Vec<Result<(), AllocError>> = std::thread::scope(|s| {
            let h1 = pool.clone();
            let h2 = pool.clone();
            let t1 = s.spawn(move || h1.deallocate(a.id));
            let t2 = s.spawn(move || h2.deallocate(a.id));
            vec![t1.join().unwrap(), t2.join().unwrap()]
        });
        let oks = outcomes.iter().filter(|r| r.is_ok()).count();
        assert_eq!(oks, 1, "round {round}: exactly one free wins: {outcomes:?}");
        assert!(
            outcomes
                .iter()
                .any(|r| r == &Err(AllocError::UnknownAllocation(a.id))),
            "round {round}: the loser sees UnknownAllocation"
        );
    }
    let stats = pool.stats();
    assert_eq!(stats.alloc_count, 50);
    assert_eq!(stats.free_count, 50, "double frees never double-counted");
    assert_eq!(stats.active_bytes, 0);
}

/// Double-free detection also holds for large (core-path) allocations and
/// for stale front-end ids whose block has since been reused.
#[test]
fn double_free_after_reuse_is_still_rejected() {
    let (pool, _driver) = caching_front();
    let a = pool.allocate(AllocRequest::new(kib(32))).unwrap();
    pool.deallocate(a.id).unwrap();
    // The same cached block comes back under a FRESH id; the stale id must
    // stay dead even though the block is live again.
    let b = pool.allocate(AllocRequest::new(kib(32))).unwrap();
    assert_eq!(b.va, a.va, "block was reused");
    assert_ne!(b.id, a.id);
    assert_eq!(
        pool.deallocate(a.id).unwrap_err(),
        AllocError::UnknownAllocation(a.id)
    );
    pool.deallocate(b.id).unwrap();

    let big = pool.allocate(AllocRequest::new(mib(16))).unwrap();
    pool.deallocate(big.id).unwrap();
    assert_eq!(
        pool.deallocate(big.id).unwrap_err(),
        AllocError::UnknownAllocation(big.id),
        "core-path double-free surfaces through the front-end"
    );
}

/// The front-end's OOM fallback reaches blocks parked in other threads'
/// shard caches: a large request that only fits once the caches are
/// flushed must succeed instead of erroring.
#[test]
fn oom_retry_reclaims_blocks_parked_by_other_threads() {
    // 256 MiB device; four threads each hold 32 × 1 MiB live before
    // freeing, so at least 32 distinct blocks end up parked in the caches
    // (threads that run later reuse earlier threads' blocks). A 240 MiB
    // request cannot fit while ≥ 32 MiB sits in the shards.
    let (pool, driver) = caching_front();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = pool.clone();
            s.spawn(move || {
                let ids: Vec<_> = (0..32)
                    .map(|_| pool.allocate(AllocRequest::new(mib(1))).unwrap().id)
                    .collect();
                for id in ids {
                    pool.deallocate(id).unwrap();
                }
            });
        }
    });
    assert!(pool.cache_stats().cached_bytes >= mib(32), "caches warm");
    assert!(driver.phys_in_use() >= mib(32));
    let big = pool.allocate(AllocRequest::new(mib(240))).unwrap();
    assert_eq!(big.size, mib(240), "flush-and-retry rescued the request");
    assert_eq!(pool.cache_stats().cached_bytes, 0, "shards were flushed");
    pool.deallocate(big.id).unwrap();
}

/// Sequential trait-generic code (the replayer path) drives the front-end
/// through `AllocatorCore` unmodified.
#[test]
fn front_end_is_a_core_for_trait_generic_callers() {
    fn run<A: gmlake_alloc_api::AllocatorCore>(mut a: A) {
        let x = a.allocate(AllocRequest::new(kib(4))).unwrap();
        a.deallocate(x.id).unwrap();
        a.iteration_boundary();
        assert_eq!(a.stats().active_bytes, 0);
    }
    let (pool, _driver) = caching_front();
    run(pool.clone());
    assert_eq!(pool.stats().alloc_count, 1);
}

/// Flush-before-defrag across streams: an OOM retry must reclaim **every**
/// stream's cache, not just the allocating stream's. The reclaimed-byte
/// count is pinned exactly so a future "flush only my bank" optimization
/// cannot silently regress the rescue.
#[test]
fn oom_retry_flushes_every_streams_cache_with_pinned_byte_count() {
    let driver = CudaDriver::new(
        DeviceConfig::small_test()
            .with_capacity(mib(300))
            .with_backing(false),
    );
    let pool = DeviceAllocator::with_config(
        CachingAllocator::new(driver.clone()),
        DeviceAllocatorConfig::default()
            .with_streams(4)
            .with_small_threshold(mib(16)),
    );
    let warm_all_streams = |pool: &DeviceAllocator| {
        for s in 0..4u32 {
            let a = pool
                .alloc_on_stream(AllocRequest::new(mib(10)), StreamId(s))
                .unwrap();
            pool.free_on_stream(a.id, StreamId(s)).unwrap();
        }
    };
    // Phase 1 — pin the reclaimed-byte count: one 10 MiB-class block parked
    // per stream, and a full flush hands back exactly all four.
    warm_all_streams(&pool);
    for s in 0..4u32 {
        assert_eq!(
            pool.stream_cache_stats(StreamId(s)).cached_bytes,
            mib(16),
            "stream {s}: one 16 MiB-class block parked in its own bank"
        );
    }
    assert_eq!(pool.flush(), 4 * mib(16), "flush reclaims every stream");
    assert_eq!(pool.cache_stats().cached_bytes, 0);

    // Phase 2 — the OOM retry does that flush implicitly: with 4 x 16 MiB
    // parked (64 MiB), a 290 MiB request on a 300 MiB device only fits if
    // every bank drains; flushing the allocating stream's bank alone
    // (16 MiB) would leave at most 252 MiB allocatable.
    warm_all_streams(&pool);
    assert_eq!(pool.cache_stats().cached_bytes, 4 * mib(16));
    let big = pool
        .alloc_on_stream(AllocRequest::new(mib(290)), StreamId(0))
        .unwrap();
    assert_eq!(big.size, mib(290), "cross-stream flush rescued the request");
    assert_eq!(pool.cache_stats().cached_bytes, 0, "all four banks drained");
    pool.free_on_stream(big.id, StreamId(0)).unwrap();
    drop(pool);
    assert!(driver.snapshot().is_quiescent());
}

/// Stream configuration is honored end to end, and invalid stream counts
/// surface as errors — never panics.
#[test]
fn stream_config_round_trips_and_zero_streams_errors() {
    let make = |streams| {
        DeviceAllocator::try_with_config(
            CachingAllocator::new(CudaDriver::new(
                DeviceConfig::small_test().with_backing(false),
            )),
            DeviceAllocatorConfig::default().with_streams(streams),
        )
    };
    let err = make(0).unwrap_err();
    assert!(matches!(err, AllocError::InvalidConfig(_)), "{err}");
    let pool = make(3).unwrap();
    let c = pool.cache_stats();
    assert_eq!(c.streams, 4, "3 streams round up to 4 banks");
    assert_eq!(c.shards, 4 * 16, "16 class shards per bank");
}

/// Cross-thread AND cross-stream: a block allocated on stream 1 by one
/// thread and freed from stream 0 by another is routed through the core,
/// never parked, and stays exactly accounted.
#[test]
fn cross_thread_cross_stream_free_takes_the_conservative_path() {
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    let pool = DeviceAllocator::with_config(
        CachingAllocator::new(driver),
        DeviceAllocatorConfig::default().with_streams(2),
    );
    let (tx, rx) = mpsc::channel::<AllocationId>();
    std::thread::scope(|s| {
        let producer = pool.clone();
        s.spawn(move || {
            for _ in 0..100 {
                let a = producer
                    .alloc_on_stream(AllocRequest::new(kib(32)), StreamId(1))
                    .unwrap();
                tx.send(a.id).unwrap();
            }
        });
        let consumer = pool.clone();
        s.spawn(move || {
            for id in rx {
                consumer.free_on_stream(id, StreamId(0)).unwrap();
            }
        });
    });
    let stats = pool.stats();
    assert_eq!(stats.alloc_count, 100);
    assert_eq!(stats.free_count, 100);
    assert_eq!(stats.active_bytes, 0);
    let cache = pool.cache_stats();
    assert_eq!(
        cache.cross_stream_fallback, 100,
        "no event source: every free crossed streams and returned to the core"
    );
    assert_eq!(cache.cross_stream_parked, 0);
    assert_eq!(cache.cached_blocks, 0, "nothing was parked for reuse");
    pool.with_core(|core| assert_eq!(core.stats().active_bytes, 0));
}

/// Regression pin: `flush()` must drain the pending event rings too —
/// defrag and OOM rescue must see **every** cached byte, including
/// cross-stream blocks whose events have NOT completed yet. The reclaimed
/// byte count and the rescue capacity are pinned exactly so a future
/// "skip pending blocks" optimization cannot silently regress it.
#[test]
fn flush_drains_pending_event_rings_with_pinned_byte_count() {
    use gmlake_alloc_api::ManualEvents;
    use std::sync::Arc;
    let driver = CudaDriver::new(
        DeviceConfig::small_test()
            .with_capacity(mib(300))
            .with_backing(false),
    );
    let events = Arc::new(ManualEvents::new());
    let pool = DeviceAllocator::with_config_and_events(
        CachingAllocator::new(driver.clone()),
        DeviceAllocatorConfig::default()
            .with_streams(4)
            .with_small_threshold(mib(16)),
        events.clone(),
    );
    // One 16 MiB-class block per stream, every one freed CROSS-stream so it
    // lands in a pending ring, and no event ever completed: 64 MiB of
    // not-yet-reusable cache.
    let park_all_streams = |pool: &DeviceAllocator| {
        for s in 0..4u32 {
            let a = pool
                .alloc_on_stream(AllocRequest::new(mib(10)), StreamId(s))
                .unwrap();
            pool.free_on_stream(a.id, StreamId((s + 1) % 4)).unwrap();
        }
    };
    // Phase 1 — pin the reclaimed-byte count.
    park_all_streams(&pool);
    let c = pool.cache_stats();
    assert_eq!(c.cross_stream_parked, 4);
    assert_eq!(c.pending_bytes, 4 * mib(16), "all four blocks pending");
    assert_eq!(c.cached_bytes, 0, "none reusable: events incomplete");
    assert!(events.pending() >= 4, "events still outstanding");
    assert_eq!(
        pool.flush(),
        4 * mib(16),
        "flush reclaims every pending ring"
    );
    assert_eq!(pool.cache_stats().pending_bytes, 0);
    assert_eq!(events.pending(), 0, "flush synchronized the events");

    // Phase 2 — the OOM retry does that flush implicitly: with 4 x 16 MiB
    // stuck pending on a 300 MiB device, a 290 MiB request only fits if
    // the rescue reaches the rings.
    park_all_streams(&pool);
    assert_eq!(pool.cache_stats().pending_bytes, 4 * mib(16));
    let big = pool
        .alloc_on_stream(AllocRequest::new(mib(290)), StreamId(0))
        .unwrap();
    assert_eq!(big.size, mib(290), "pending blocks rescued the request");
    assert_eq!(pool.cache_stats().pending_bytes, 0, "all rings drained");
    pool.free_on_stream(big.id, StreamId(0)).unwrap();
    drop(pool);
    assert!(driver.snapshot().is_quiescent());
}

/// Shard configuration is honored and observable.
#[test]
fn custom_shard_config_round_trips() {
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    let pool = DeviceAllocator::with_config(
        CachingAllocator::new(driver),
        DeviceAllocatorConfig::default()
            .with_shards(5) // rounded up to 8
            .with_max_cached_per_class(1),
    );
    let a = pool.allocate(AllocRequest::new(kib(16))).unwrap();
    let b = pool.allocate(AllocRequest::new(kib(16))).unwrap();
    pool.deallocate(a.id).unwrap();
    pool.deallocate(b.id).unwrap();
    let cache = pool.cache_stats();
    assert_eq!(cache.shards, 8);
    assert_eq!(cache.cached_blocks, 1, "per-class cap enforced");
}
