//! Property and stress tests for the serving layer's quota accounting:
//! the per-tenant books must reconcile *exactly* with the pool's
//! `MemStats` at quiescence, through every path — size-class rounding,
//! quota refusals, cross-stream frees riding the pending rings, tenant
//! departures, and concurrent tenants hammering one pool.

use proptest::prelude::*;

use gmlake::prelude::*;
use gmlake_serving::{ServingConfig, ServingService, TenantId};

/// Tenants driven by the random programs.
const TENANTS: usize = 3;
/// Per-tenant quota; small enough that programs hit `QuotaExceeded`.
const QUOTA: u64 = 8 * 1024 * 1024;

/// One step of a random serving program.
#[derive(Debug, Clone)]
enum Op {
    /// Tenant (mod live tenants) allocates this many bytes.
    Alloc(usize, u64),
    /// Tenant frees its n-th (mod count) live allocation from its own
    /// stream.
    Free(usize, usize),
    /// Tenant frees its n-th live allocation from a *different* stream —
    /// the cross-stream path through the pending rings.
    FreeCross(usize, usize),
    /// Advance the service step (queue retries + defrag cadence).
    Step,
    /// Tenant departs (its remaining allocations are freed by the
    /// service; later ops on it must be refused).
    Depart(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        6 => (0..TENANTS, 4096u64..2 * 1024 * 1024).prop_map(|(t, s)| Op::Alloc(t, s)),
        4 => (0..TENANTS, any::<usize>()).prop_map(|(t, n)| Op::Free(t, n)),
        2 => (0..TENANTS, any::<usize>()).prop_map(|(t, n)| Op::FreeCross(t, n)),
        1 => Just(Op::Step),
        1 => (0..TENANTS).prop_map(Op::Depart),
    ]
}

fn serving_fixture() -> ServingService {
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    let pool = PoolService::new()
        .register(DeviceId(0), Box::new(CachingAllocator::new(driver)))
        .expect("fresh service");
    ServingService::new(
        pool,
        ServingConfig::new(mib(256))
            .with_streams(2)
            .with_idle_after(1_000_000),
    )
}

/// Book-keeping mirror of one tenant: what the registry *should* say.
#[derive(Default)]
struct Mirror {
    live: Vec<(AllocationId, u64)>,
    departed: bool,
}

impl Mirror {
    fn used(&self) -> u64 {
        self.live.iter().map(|(_, s)| s).sum()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random programs over several tenants: after every op the registry
    /// agrees with an independent mirror, the pool never reports less
    /// active memory than the tenants hold, and at quiescence both books
    /// read exactly zero.
    #[test]
    fn tenant_books_reconcile_with_pool_stats(
        ops in prop::collection::vec(op_strategy(), 1..140)
    ) {
        let serving = serving_fixture();
        let ids: Vec<TenantId> = (0..TENANTS)
            .map(|_| serving.offer(QUOTA).tenant().expect("fits"))
            .collect();
        let mut mirrors: Vec<Mirror> = (0..TENANTS).map(|_| Mirror::default()).collect();

        for op in &ops {
            match *op {
                Op::Alloc(t, bytes) => {
                    let m = &mut mirrors[t];
                    match serving.alloc(ids[t], bytes) {
                        Ok(a) => {
                            prop_assert!(!m.departed, "departed tenant allocated");
                            prop_assert!(a.size >= bytes);
                            prop_assert!(m.used() + a.size <= QUOTA, "quota breached");
                            m.live.push((a.id, a.size));
                        }
                        Err(AllocError::QuotaExceeded { used, quota, .. }) => {
                            prop_assert_eq!(used, m.used(), "exact usage in the error");
                            prop_assert_eq!(quota, QUOTA);
                        }
                        Err(AllocError::InvalidConfig(_)) => {
                            prop_assert!(m.departed, "only departed tenants are unknown");
                        }
                        Err(e) => panic!("alloc: {e}"),
                    }
                }
                Op::Free(t, n) | Op::FreeCross(t, n) => {
                    let m = &mut mirrors[t];
                    if m.live.is_empty() {
                        continue;
                    }
                    let (id, _) = m.live.swap_remove(n % m.live.len());
                    let res = if matches!(op, Op::FreeCross(..)) {
                        // Issue the free from the *other* stream of the
                        // two-stream service: for half the tenants this is
                        // a genuine cross-stream free through the pending
                        // ring machinery.
                        serving.free_from(ids[t], id, StreamId((t as u32 + 1) % 2))
                    } else {
                        serving.free(ids[t], id)
                    };
                    res.unwrap_or_else(|e| panic!("free: {e}"));
                }
                Op::Step => {
                    serving.step();
                }
                Op::Depart(t) => {
                    let m = &mut mirrors[t];
                    let released = serving.depart(ids[t]);
                    if m.departed {
                        prop_assert_eq!(released, None, "double departure");
                    } else {
                        prop_assert_eq!(released, Some(m.used()), "departure frees the rest");
                        m.live.clear();
                        m.departed = true;
                    }
                }
            }
            // The registry reconciles with the mirror after every op...
            for (t, m) in mirrors.iter().enumerate() {
                match serving.usage(ids[t]) {
                    Some(u) => {
                        prop_assert_eq!(u.used_bytes, m.used());
                        prop_assert_eq!(u.live_allocs, m.live.len() as u64);
                    }
                    None => prop_assert!(m.departed),
                }
            }
            let held: u64 = mirrors.iter().map(Mirror::used).sum();
            prop_assert_eq!(serving.used_bytes(), held);
            // ...and the pool can only hold MORE than the tenants (cached
            // blocks, pending cross-stream frees), never less.
            prop_assert!(serving.pool().stats().active_bytes >= held);
        }

        // Quiescence: free every survivor, drain the pending rings, and
        // both books must read exactly zero.
        for (t, m) in mirrors.iter_mut().enumerate() {
            for (id, _) in m.live.drain(..) {
                serving.free(ids[t], id).unwrap();
            }
        }
        serving.pool().process_events();
        prop_assert_eq!(serving.used_bytes(), 0);
        let stats = serving.pool().stats();
        prop_assert_eq!(stats.active_bytes, 0, "pool and registry agree at quiescence");
    }
}

/// Many threads, one pool: each thread owns a tenant and churns
/// allocations (with cross-stream frees mixed in) while others do the
/// same. At the end every tenant's books must match its thread's local
/// count exactly, and the pool must drain to zero.
#[test]
fn concurrent_tenants_reconcile_exactly() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 300;

    let serving = serving_fixture();
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let serving = serving.clone();
        handles.push(std::thread::spawn(move || {
            let tenant = serving.offer(QUOTA).tenant().expect("fits");
            let mut live: Vec<(AllocationId, u64)> = Vec::new();
            // Deterministic per-thread op stream (splitmix-ish).
            let mut x = 0x9E37_79B9u64.wrapping_mul(t as u64 + 1);
            let mut next = || {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x
            };
            for _ in 0..ROUNDS {
                match next() % 3 {
                    0 | 1 => {
                        let bytes = 4096 + next() % (512 * 1024);
                        match serving.alloc(tenant, bytes) {
                            Ok(a) => live.push((a.id, a.size)),
                            Err(AllocError::QuotaExceeded { .. }) => {
                                // Over budget: free the oldest and move on.
                                if let Some((id, _)) = live.first().copied() {
                                    live.remove(0);
                                    serving.free(tenant, id).unwrap();
                                }
                            }
                            Err(e) => panic!("tenant {t}: {e}"),
                        }
                    }
                    _ => {
                        if !live.is_empty() {
                            let (id, _) = live.swap_remove((next() as usize) % live.len());
                            if next() % 4 == 0 {
                                serving
                                    .free_from(tenant, id, StreamId((t as u32 + 1) % 2))
                                    .unwrap();
                            } else {
                                serving.free(tenant, id).unwrap();
                            }
                        }
                    }
                }
            }
            let held: u64 = live.iter().map(|(_, s)| s).sum();
            (tenant, live, held)
        }));
    }

    let mut total_held = 0;
    let mut survivors = Vec::new();
    for h in handles {
        let (tenant, live, held) = h.join().expect("no tenant thread may panic");
        let usage = serving.usage(tenant).expect("still registered");
        assert_eq!(usage.used_bytes, held, "tenant books match the thread's");
        assert_eq!(usage.live_allocs, live.len() as u64);
        total_held += held;
        survivors.push((tenant, live));
    }
    assert_eq!(serving.used_bytes(), total_held);
    assert!(serving.pool().stats().active_bytes >= total_held);

    // Drain through departure (the service frees the remainder).
    for (tenant, _) in survivors {
        serving.depart(tenant);
    }
    serving.pool().process_events();
    assert_eq!(serving.used_bytes(), 0);
    assert_eq!(serving.pool().stats().active_bytes, 0);
    assert_eq!(serving.tenant_count(), 0);
}
