//! Deterministic-interleaving concurrency tests for the stream-aware,
//! event-guarded `DeviceAllocator`: a seeded scheduler drives 2 streams x 2
//! worker threads through scripted alloc/free/flush/compact/event-tick
//! sequences — including cross-stream frees and double-free races — one
//! operation at a time, in a seed-chosen global order. Every operation
//! executes on a real worker thread (the handoff crosses `Send`/`Sync` for
//! real), but the scheduler waits for each acknowledgment before
//! dispatching the next, so a given seed replays the exact same
//! interleaving every time.
//!
//! The pool is backed by a `ManualEvents` source, so cross-stream frees
//! park blocks in the pending rings and the scripted `Tick` actions model
//! event completion (`complete_all` + `process_events`) at seed-chosen
//! points relative to the other threads' operations.
//!
//! 256 seeds are replayed per run; for each one the test pins
//!
//! * double-free races: two frees of one allocation never both succeed —
//!   the loser sees `UnknownAllocation`, whichever order the seed chose;
//! * cross-stream frees take the event-guarded parking path, never the
//!   core fallback (the rings never fill in these scripts);
//! * exact accounting at quiescence: every successful allocation freed
//!   exactly once, `active_bytes == 0`, the pending rings drained by the
//!   final flush (events synchronized), core and front-end reconciled, and
//!   the simulated device fully quiescent after teardown.

use std::sync::mpsc;
use std::sync::{Arc, Mutex};

use gmlake::prelude::*;
use gmlake_alloc_api::{DeviceAllocatorConfig, ManualEvents};

mod common;
use common::xorshift;

/// One scripted operation, executed on a worker thread.
#[derive(Debug, Clone, Copy)]
enum Action {
    Alloc {
        slot: usize,
        size: u64,
        stream: StreamId,
    },
    Free {
        slot: usize,
        stream: StreamId,
    },
    /// Complete every event recorded so far, then sweep the pending rings
    /// (`process_events`) — the pending→ready transition, scheduled like
    /// any other op so it interleaves with the other thread's frees.
    Tick,
    Flush,
    Compact,
}

/// What executing one action did (deterministic per seed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Outcome {
    Allocated,
    Freed,
    /// The free lost a double-free race: `UnknownAllocation`.
    DoubleFree,
    /// The free's slot had not been allocated yet under this interleaving.
    SlotEmpty,
    Maintenance,
}

const S0: StreamId = StreamId(0);
const S1: StreamId = StreamId(1);
const SLOTS: usize = 6;

/// Thread 0's script: works on stream 0, frees slot 2 cross-stream, and
/// races thread 1 for slot 1.
fn script_thread0() -> Vec<Action> {
    vec![
        Action::Alloc {
            slot: 0,
            size: kib(64),
            stream: S0,
        },
        Action::Alloc {
            slot: 1,
            size: kib(64),
            stream: S0,
        },
        Action::Alloc {
            slot: 2,
            size: kib(256),
            stream: S0,
        },
        Action::Free {
            slot: 0,
            stream: S0,
        }, // same-stream: parks for reuse
        Action::Flush,
        Action::Free {
            slot: 2,
            stream: S1,
        }, // cross-stream: event recorded, parked pending
        Action::Tick, // complete events, promote pending blocks
        Action::Alloc {
            slot: 4,
            size: kib(64),
            stream: S0,
        },
        Action::Free {
            slot: 4,
            stream: S0,
        },
        Action::Free {
            slot: 1,
            stream: S0,
        }, // double-free race (vs thread 1)
    ]
}

/// Thread 1's script: works on stream 1, races thread 0 for slot 1 from the
/// other stream, and frees slot 5 cross-stream.
fn script_thread1() -> Vec<Action> {
    vec![
        Action::Alloc {
            slot: 3,
            size: kib(64),
            stream: S1,
        },
        Action::Free {
            slot: 1,
            stream: S1,
        }, // double-free race (vs thread 0)
        Action::Compact,
        Action::Alloc {
            slot: 5,
            size: kib(256),
            stream: S1,
        },
        Action::Free {
            slot: 3,
            stream: S1,
        },
        Action::Free {
            slot: 5,
            stream: S0,
        }, // cross-stream: event recorded, parked pending
        Action::Tick, // may promote slot 5's block before the final flush
        Action::Flush,
    ]
}

/// Runs both scripts under the interleaving chosen by `seed`; returns the
/// global (thread, action-index, outcome) log in execution order.
fn run_scheduled(
    seed: u64,
    pool: &DeviceAllocator,
    events: &Arc<ManualEvents>,
) -> Vec<(usize, usize, Outcome)> {
    // Allocation ids land in shared slots; a slot is never cleared, so a
    // scripted double-free genuinely re-submits the same id.
    let slots: Arc<Mutex<[Option<AllocationId>; SLOTS]>> = Arc::new(Mutex::new([None; SLOTS]));
    let scripts = [script_thread0(), script_thread1()];
    let mut rng = seed | 1;

    std::thread::scope(|scope| {
        // One (go, done) channel pair per worker: the scheduler sends the
        // next action, the worker executes it on ITS thread and acks with
        // the outcome before anything else may run.
        let mut go_txs = Vec::new();
        let mut done_rxs = Vec::new();
        for _ in 0..2 {
            let (go_tx, go_rx) = mpsc::channel::<Action>();
            let (done_tx, done_rx) = mpsc::channel::<Outcome>();
            let pool = pool.clone();
            let events = Arc::clone(events);
            let slots = Arc::clone(&slots);
            scope.spawn(move || {
                for action in go_rx {
                    let outcome = match action {
                        Action::Alloc { slot, size, stream } => {
                            let a = pool
                                .alloc_on_stream(AllocRequest::new(size), stream)
                                .unwrap();
                            slots.lock().unwrap()[slot] = Some(a.id);
                            Outcome::Allocated
                        }
                        Action::Free { slot, stream } => {
                            let id = slots.lock().unwrap()[slot];
                            match id {
                                None => Outcome::SlotEmpty,
                                Some(id) => match pool.free_on_stream(id, stream) {
                                    Ok(()) => Outcome::Freed,
                                    Err(AllocError::UnknownAllocation(lost)) => {
                                        assert_eq!(lost, id);
                                        Outcome::DoubleFree
                                    }
                                    Err(e) => panic!("unexpected free error: {e}"),
                                },
                            }
                        }
                        Action::Tick => {
                            events.complete_all();
                            pool.process_events();
                            Outcome::Maintenance
                        }
                        Action::Flush => {
                            pool.flush();
                            Outcome::Maintenance
                        }
                        Action::Compact => {
                            pool.compact();
                            Outcome::Maintenance
                        }
                    };
                    done_tx.send(outcome).unwrap();
                }
            });
            go_txs.push(go_tx);
            done_rxs.push(done_rx);
        }

        let mut cursors = [0usize; 2];
        let mut log = Vec::new();
        loop {
            let pending: Vec<usize> = (0..2).filter(|&t| cursors[t] < scripts[t].len()).collect();
            if pending.is_empty() {
                break;
            }
            let t = pending[(xorshift(&mut rng) % pending.len() as u64) as usize];
            let idx = cursors[t];
            cursors[t] += 1;
            go_txs[t].send(scripts[t][idx]).unwrap();
            let outcome = done_rxs[t].recv().unwrap();
            log.push((t, idx, outcome));
        }
        drop(go_txs); // workers exit their recv loops
        log
    })
}

fn make_pool() -> (DeviceAllocator, CudaDriver, Arc<ManualEvents>) {
    let driver = CudaDriver::new(DeviceConfig::small_test().with_backing(false));
    let events = Arc::new(ManualEvents::new());
    (
        DeviceAllocator::with_config_and_events(
            CachingAllocator::new(driver.clone()),
            DeviceAllocatorConfig::default().with_streams(2),
            events.clone(),
        ),
        driver,
        events,
    )
}

/// The invariants one scheduled run must satisfy, for ANY interleaving.
fn check_run(seed: u64) {
    let (pool, driver, events) = make_pool();
    let log = run_scheduled(seed, &pool, &events);
    assert_eq!(log.len(), script_thread0().len() + script_thread1().len());

    let allocs = log
        .iter()
        .filter(|(_, _, o)| *o == Outcome::Allocated)
        .count();
    assert_eq!(allocs, SLOTS, "seed {seed}: every scripted alloc succeeded");

    // Double-free race on slot 1: the two frees never BOTH succeed. When
    // the seed sequenced both after the allocation, exactly one wins and
    // the loser observes UnknownAllocation.
    let scripts = [script_thread0(), script_thread1()];
    let slot1_frees: Vec<Outcome> = log
        .iter()
        .filter_map(|&(t, idx, o)| {
            matches!(scripts[t][idx], Action::Free { slot: 1, .. }).then_some(o)
        })
        .collect();
    assert_eq!(slot1_frees.len(), 2, "seed {seed}");
    let wins = slot1_frees.iter().filter(|o| **o == Outcome::Freed).count();
    assert!(
        wins <= 1,
        "seed {seed}: double-free won twice: {slot1_frees:?}"
    );
    if !slot1_frees.contains(&Outcome::SlotEmpty) {
        assert_eq!(
            wins, 1,
            "seed {seed}: both frees saw the id, one must win: {slot1_frees:?}"
        );
        assert!(slot1_frees.contains(&Outcome::DoubleFree), "seed {seed}");
    }

    // Cross-stream frees of slots 2 and 5 are script-ordered after their
    // allocs on the same thread, so they always execute and always take the
    // event-guarded parking path; the slot-1 winner may add a third. The
    // rings never fill in these scripts, so the core fallback never fires.
    let cache = pool.cache_stats();
    assert!(
        (2..=3).contains(&cache.cross_stream_parked),
        "seed {seed}: cross-stream parked {}",
        cache.cross_stream_parked
    );
    assert_eq!(
        cache.cross_stream_fallback, 0,
        "seed {seed}: no free should have fallen back to the core"
    );

    // Quiescence: under EVERY interleaving each slot ends up freed exactly
    // once — the non-raced frees are script-ordered after their allocs, and
    // the slot-1 race resolves to one winner whichever side saw the id
    // first. The accounting is therefore pinned exactly.
    let freed_ok = log.iter().filter(|(_, _, o)| *o == Outcome::Freed).count();
    assert_eq!(freed_ok, SLOTS, "seed {seed}: each slot freed exactly once");
    let stats = pool.stats();
    assert_eq!(stats.alloc_count, SLOTS as u64, "seed {seed}");
    assert_eq!(stats.free_count, SLOTS as u64, "seed {seed}");
    assert_eq!(stats.active_bytes, 0, "seed {seed}");
    // The final flush reaches blocks still waiting in the pending rings
    // (frees sequenced after the last Tick), synchronizing their events on
    // the way out: nothing stays parked, no event stays outstanding.
    pool.flush();
    let cache = pool.cache_stats();
    assert_eq!(cache.pending_blocks, 0, "seed {seed}: rings drained");
    assert_eq!(cache.pending_bytes, 0, "seed {seed}");
    assert_eq!(
        events.pending(),
        0,
        "seed {seed}: flush synchronized events"
    );
    pool.with_core(|core| assert_eq!(core.stats().active_bytes, 0, "seed {seed}"));
    drop(pool);
    assert!(driver.snapshot().is_quiescent(), "seed {seed}");
}

#[test]
fn same_seed_replays_the_same_interleaving() {
    let (pool_a, _da, ev_a) = make_pool();
    let (pool_b, _db, ev_b) = make_pool();
    let a = run_scheduled(42, &pool_a, &ev_a);
    let b = run_scheduled(42, &pool_b, &ev_b);
    assert_eq!(a, b, "the scheduler is deterministic per seed");
}

#[test]
fn different_seeds_explore_different_interleavings() {
    let orders: std::collections::HashSet<Vec<(usize, usize)>> = (0..32u64)
        .map(|seed| {
            let (pool, _d, events) = make_pool();
            run_scheduled(seed, &pool, &events)
                .into_iter()
                .map(|(t, i, _)| (t, i))
                .collect()
        })
        .collect();
    assert!(orders.len() > 8, "only {} distinct schedules", orders.len());
}

#[test]
fn scripted_races_hold_invariants_across_256_seeds() {
    for seed in 0..256u64 {
        check_run(seed);
    }
}
