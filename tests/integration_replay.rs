//! Cross-crate integration: workload traces driving real allocators on the
//! simulated device, checking the end-to-end properties the paper claims.

use gmlake::prelude::*;
use gmlake_core::GmLakeConfig;
use gmlake_workload::TraceGenerator;

/// A small-but-real fine-tuning workload that runs fast in debug builds.
fn small_workload(strategies: StrategySet) -> TrainConfig {
    TrainConfig::new(ModelSpec::opt_1_3b(), strategies)
        .with_seq_len(256)
        .with_batch(2)
        .with_iterations(3)
}

#[test]
fn gmlake_never_fragments_worse_than_baseline() {
    for strategies in StrategySet::FIG10_SWEEP {
        let cfg = small_workload(strategies);
        let trace = TraceGenerator::new(cfg.clone()).generate();

        let d1 = CudaDriver::new(DeviceConfig::a100_80g());
        let mut baseline = CachingAllocator::new(d1.clone());
        let r_base = Replayer::new(d1).replay(&mut baseline, &trace, &cfg);

        let d2 = CudaDriver::new(DeviceConfig::a100_80g());
        let mut lake = GmLakeAllocator::new(d2.clone(), GmLakeConfig::default());
        let r_lake = Replayer::new(d2).replay(&mut lake, &trace, &cfg);

        assert!(r_base.outcome.is_completed(), "{}", cfg.label());
        assert!(r_lake.outcome.is_completed(), "{}", cfg.label());
        assert!(
            r_lake.utilization() + 0.02 >= r_base.utilization(),
            "{}: gmlake {:.3} vs baseline {:.3}",
            cfg.label(),
            r_lake.utilization(),
            r_base.utilization()
        );
        // Both allocators must end the trace empty.
        assert_eq!(baseline.stats().active_bytes, 0);
        assert_eq!(lake.stats().active_bytes, 0);
        lake.validate().unwrap();
        baseline.validate().unwrap();
    }
}

#[test]
fn gmlake_converges_on_periodic_workloads() {
    let cfg = small_workload(StrategySet::LR).with_iterations(8);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
    let report = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
    assert!(report.outcome.is_completed());
    let history = lake.non_exact_history();
    assert_eq!(history.len(), 8);
    // The convergence curve must decay: the last iteration performs far
    // fewer non-exact transitions than the first (the paper's §4.2.2).
    assert!(
        history[7] * 10 <= history[0].max(10),
        "no convergence: {history:?}"
    );
    // Physical memory stops growing once the pattern is learned.
    let created_before = driver.stats().create.calls;
    let r2 = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
    assert!(r2.outcome.is_completed());
    assert_eq!(
        driver.stats().create.calls,
        created_before,
        "steady state must not allocate new physical chunks"
    );
}

#[test]
fn replays_are_deterministic() {
    let cfg = small_workload(StrategySet::LRO);
    let run = || {
        let trace = TraceGenerator::new(cfg.clone()).generate();
        let driver = CudaDriver::new(DeviceConfig::a100_80g());
        let mut lake = GmLakeAllocator::new(driver, GmLakeConfig::default());
        let r = Replayer::new(lake.driver().clone()).replay(&mut lake, &trace, &cfg);
        (
            r.peak_active,
            r.peak_reserved,
            r.sim_time_ns,
            r.iterations_completed,
        )
    };
    assert_eq!(run(), run());
}

#[test]
fn two_allocators_share_one_device() {
    // A GMLake pool and a caching pool coexisting on one GPU (as in a real
    // process with two memory pools): device accounting must equal the sum
    // of both reservations at all times.
    let driver = CudaDriver::new(DeviceConfig::small_test());
    let mut lake = GmLakeAllocator::new(
        driver.clone(),
        GmLakeConfig::default().with_frag_limit(mib(2)),
    );
    let mut bfc = CachingAllocator::new(driver.clone());

    let a = lake.allocate(AllocRequest::new(mib(10))).unwrap();
    let b = bfc.allocate(AllocRequest::new(mib(6))).unwrap();
    let expected = lake.stats().reserved_bytes + bfc.stats().reserved_bytes;
    assert_eq!(driver.phys_in_use(), expected);

    lake.deallocate(a.id).unwrap();
    bfc.deallocate(b.id).unwrap();
    // Caches persist; the device still holds both pools' reservations.
    let expected = lake.stats().reserved_bytes + bfc.stats().reserved_bytes;
    assert_eq!(driver.phys_in_use(), expected);

    drop(lake);
    drop(bfc);
    assert!(driver.snapshot().is_quiescent(), "all memory returned");
}

#[test]
fn device_quiescent_after_full_replay_and_drop() {
    let cfg = small_workload(StrategySet::RO);
    let trace = TraceGenerator::new(cfg.clone()).generate();
    let driver = CudaDriver::new(DeviceConfig::a100_80g());
    {
        let mut lake = GmLakeAllocator::new(driver.clone(), GmLakeConfig::default());
        let _ = Replayer::new(driver.clone()).replay(&mut lake, &trace, &cfg);
        assert!(driver.phys_in_use() > 0, "cache retained while alive");
    }
    assert!(driver.snapshot().is_quiescent());
}

#[test]
fn throughput_parity_after_convergence() {
    // The paper's Figure 13 bottom row: GMLake matches the caching
    // allocator's steady-state throughput.
    let cfg = small_workload(StrategySet::LR).with_iterations(8);
    let trace = TraceGenerator::new(cfg.clone()).generate();

    let d1 = CudaDriver::new(DeviceConfig::a100_80g());
    let mut baseline = CachingAllocator::new(d1.clone());
    let r_base = Replayer::new(d1).replay(&mut baseline, &trace, &cfg);

    let d2 = CudaDriver::new(DeviceConfig::a100_80g());
    let mut lake = GmLakeAllocator::new(d2.clone(), GmLakeConfig::default());
    let r_lake = Replayer::new(d2).replay(&mut lake, &trace, &cfg);

    let ratio = r_lake.throughput / r_base.throughput;
    assert!(
        ratio > 0.9,
        "gmlake steady-state throughput {:.2} vs baseline {:.2} ({:.2}x)",
        r_lake.throughput,
        r_base.throughput,
        ratio
    );
}
