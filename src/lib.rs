//! # GMLake — GPU memory defragmentation via virtual memory stitching
//!
//! Facade crate re-exporting the whole workspace. See the README for an
//! architecture overview and `DESIGN.md` for the paper-to-module map.
//!
//! ```
//! use gmlake::prelude::*;
//!
//! let driver = CudaDriver::new(DeviceConfig::small_test());
//! let mut alloc = GmLakeAllocator::new(driver, GmLakeConfig::default());
//! let a = alloc.allocate(AllocRequest::new(mib(4)))?;
//! alloc.deallocate(a.id)?;
//! # Ok::<(), gmlake::alloc_api::AllocError>(())
//! ```

pub use gmlake_alloc_api as alloc_api;
pub use gmlake_caching as caching;
pub use gmlake_core as core;
pub use gmlake_gpu_sim as gpu_sim;
pub use gmlake_planning as planning;
pub use gmlake_runtime as runtime;
pub use gmlake_serving as serving;
pub use gmlake_telemetry as telemetry;
pub use gmlake_workload as workload;

/// Commonly used items, importable with a single `use gmlake::prelude::*`.
pub mod prelude {
    pub use gmlake_alloc_api::{
        gib, kib, mib, AllocError, AllocRequest, AllocTag, Allocation, AllocationId, AllocatorCore,
        DeviceAllocator, DeviceAllocatorConfig, MemStats, StreamId, VirtAddr,
    };
    pub use gmlake_caching::CachingAllocator;
    pub use gmlake_core::{GmLakeAllocator, GmLakeConfig};
    pub use gmlake_gpu_sim::{CudaDriver, DeviceConfig, FaultOp, FaultPlan, NativeAllocator};
    pub use gmlake_planning::{MemoryPlan, PlannedConfig, PlannedCore};
    pub use gmlake_runtime::{
        DefragScheduler, DeviceId, FaultPolicy, MemoryProfiler, PoolHandle, PoolService,
    };
    pub use gmlake_serving::{AdmissionPolicy, ServingConfig, ServingService, TenantId};
    pub use gmlake_telemetry::{MemorySnapshot, PoolTelemetry};
    pub use gmlake_workload::{
        ConcurrentReplayer, ModelSpec, Platform, RankSpec, Replayer, StrategySet, TrainConfig,
    };
}
